//! Batched evaluation of the WSC-2 weighted sum over a run of symbols.
//!
//! Every WSC-2 absorption reduces to one computation over a run of
//! consecutive 32-bit symbols `d_0 .. d_{n-1}`:
//!
//! ```text
//! p0 = Σ dᵢ          H = Σ αⁱ·dᵢ        (the caller then adds α^start·H)
//! ```
//!
//! This module computes `(p0, H)` three ways, all bit-identical:
//!
//! * **serial Horner** (`width = 1`, the portable baseline) — back to
//!   front, `h ← h·α + d`, one [`Gf32::mul_alpha`] shift per symbol. No
//!   full multiplies, but a latency chain the CPU cannot overlap.
//! * **wide-lane Horner over tables** (`width = L` on
//!   [`Backend::Tables`]) — the lane identity
//!   `Σ αⁱ dᵢ = Σ_{j<L} αʲ · (Σ_k α^(kL)·d_(kL+j))` splits the sum into
//!   `L` independent chains, each stepping by the constant `α^L` with a
//!   full table multiply. Honest but rarely profitable: 20 lookups per
//!   symbol lose to the serial shift chain.
//! * **wide-lane Horner over clmul** (`width = L` on
//!   [`Backend::Clmul`]) — the same identity, but one chain step is two
//!   `PCLMULQDQ`/`PMULL` instructions with lazy reduction (see
//!   `clmul.rs`). The chains pipeline, and this is the >1 GiB/s path the
//!   TPDU invariant verification rides.
//!
//! [`fold_symbols`] picks the active backend's best width;
//! [`fold_symbols_with`] pins backend and width explicitly, which is what
//! the `invariant` benchmark sweeps into `BENCH_wsc.json`.

use crate::backend::Backend;
use crate::Gf32;

/// Batch widths [`fold_symbols_with`] accepts: 1 is the serial Horner
/// sweep, the rest are wide-lane chain counts.
pub const BATCH_WIDTHS: [usize; 5] = [1, 2, 4, 8, 16];

/// The width [`fold_symbols`] uses on the clmul backend.
pub const DEFAULT_CLMUL_WIDTH: usize = 8;

/// Symbols converted per stack block in [`fold_be_bytes`].
const BYTES_BLOCK_SYMBOLS: usize = 256;

/// `(Σ dᵢ, Σ αⁱ·dᵢ)` over `data` on the active backend at its preferred
/// width: serial Horner on [`Backend::Tables`], 8 clmul lanes on
/// [`Backend::Clmul`].
///
/// ```
/// use chunks_gf::{fold_symbols, Gf32};
/// let (p0, h) = fold_symbols(&[7, 9]);
/// assert_eq!(p0, Gf32::new(7 ^ 9));
/// assert_eq!(h, Gf32::new(7) + Gf32::alpha_pow(1) * Gf32::new(9));
/// ```
#[inline]
pub fn fold_symbols(data: &[u32]) -> (Gf32, Gf32) {
    let (p0, h) = match Backend::active() {
        Backend::Clmul => crate::clmul::fold_symbols(data, DEFAULT_CLMUL_WIDTH),
        Backend::Tables => fold_serial(data),
    };
    (Gf32::new(p0), Gf32::new(h))
}

/// [`fold_symbols`] with backend and batch width pinned — the benchmark
/// sweep entry point. `width` must come from [`BATCH_WIDTHS`]; requesting
/// the clmul backend on a CPU without carry-less multiply falls back to
/// the equivalent table-path computation.
pub fn fold_symbols_with(backend: Backend, width: usize, data: &[u32]) -> (Gf32, Gf32) {
    debug_assert!(BATCH_WIDTHS.contains(&width), "unsupported width {width}");
    let (p0, h) = match (backend, width) {
        (_, 0 | 1) => fold_serial(data),
        (Backend::Clmul, w) => crate::clmul::fold_symbols(data, w),
        (Backend::Tables, 2) => fold_lanes_tables::<2>(data),
        (Backend::Tables, 4) => fold_lanes_tables::<4>(data),
        (Backend::Tables, 16) => fold_lanes_tables::<16>(data),
        (Backend::Tables, _) => fold_lanes_tables::<8>(data),
    };
    (Gf32::new(p0), Gf32::new(h))
}

/// `(Σ dᵢ, Σ αⁱ·dᵢ)` over raw bytes read as big-endian 32-bit symbols, a
/// trailing partial symbol zero-padded on the right — the byte-level
/// convention of `Wsc2::add_bytes`. Runs on the active backend.
///
/// Bytes are converted in 256-symbol stack blocks so arbitrarily long
/// runs never allocate; blocks combine by the block-Horner identity
/// `H = H_blk + α^{blk_symbols}·H_rest`.
pub fn fold_be_bytes(bytes: &[u8]) -> (Gf32, Gf32) {
    fold_be_bytes_impl(bytes, fold_symbols)
}

/// [`fold_be_bytes`] with backend and batch width pinned (see
/// [`fold_symbols_with`]).
pub fn fold_be_bytes_with(backend: Backend, width: usize, bytes: &[u8]) -> (Gf32, Gf32) {
    fold_be_bytes_impl(bytes, |block| fold_symbols_with(backend, width, block))
}

fn fold_be_bytes_impl(bytes: &[u8], fold: impl Fn(&[u32]) -> (Gf32, Gf32)) -> (Gf32, Gf32) {
    const BLOCK_BYTES: usize = BYTES_BLOCK_SYMBOLS * 4;
    if bytes.is_empty() {
        return (Gf32::ZERO, Gf32::ZERO);
    }
    // Combine blocks back to front: h = H_blk + α^{syms(blk)}·h.
    let mut p0 = Gf32::ZERO;
    let mut h = Gf32::ZERO;
    let mut buf = [0u32; BYTES_BLOCK_SYMBOLS];
    for block in bytes.chunks(BLOCK_BYTES).rev() {
        let n_sym = block.len().div_ceil(4);
        for (slot, word) in buf[..n_sym].iter_mut().zip(block.chunks(4)) {
            let mut be = [0u8; 4];
            be[..word.len()].copy_from_slice(word);
            *slot = u32::from_be_bytes(be);
        }
        let (bp0, bh) = fold(&buf[..n_sym]);
        p0 += bp0;
        h = bh + Gf32::alpha_pow(n_sym as u64) * h;
    }
    (p0, h)
}

/// The portable serial fold: backward Horner, one `mul_alpha` per symbol.
/// `pub(crate)` so the clmul module can fall back to it.
pub(crate) fn fold_serial(data: &[u32]) -> (u32, u32) {
    let mut p0 = Gf32::ZERO;
    let mut horner = Gf32::ZERO;
    for &d in data.iter().rev() {
        let d = Gf32::new(d);
        horner = horner.mul_alpha() + d;
        p0 += d;
    }
    (p0.value(), horner.value())
}

/// Wide-lane Horner on the table path: `L` chains stepping by `α^L` via
/// `mul_tables`, combined with the lane identity. Kept for an honest
/// tables-at-width-`L` arm in the benchmark sweep.
fn fold_lanes_tables<const L: usize>(data: &[u32]) -> (u32, u32) {
    let c = Gf32::alpha_pow(L as u64);
    let blocks = data.len() / L;
    let mut acc = [Gf32::ZERO; L];
    let mut p0 = Gf32::ZERO;
    for k in (0..blocks).rev() {
        let base = k * L;
        for j in 0..L {
            let d = Gf32::new(data[base + j]);
            p0 += d;
            acc[j] = acc[j].mul_fast(c) + d;
        }
    }
    // Tail, then Σ αʲ·acc_j by Horner from the top lane down.
    let mut horner = Gf32::ZERO;
    for &a in acc.iter().rev() {
        horner = horner.mul_alpha() + a;
    }
    let mut tail_h = Gf32::ZERO;
    for &d in data[blocks * L..].iter().rev() {
        let d = Gf32::new(d);
        tail_h = tail_h.mul_alpha() + d;
        p0 += d;
    }
    let h = horner + Gf32::alpha_pow((blocks * L) as u64) * tail_h;
    (p0.value(), h.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: symbol-by-symbol reference-path accumulation.
    fn reference(data: &[u32]) -> (Gf32, Gf32) {
        let mut p0 = Gf32::ZERO;
        let mut h = Gf32::ZERO;
        for (i, &d) in data.iter().enumerate() {
            let d = Gf32::new(d);
            p0 += d;
            h += Gf32::alpha_pow_ref(i as u64).mul_ref(d);
        }
        (p0, h)
    }

    fn sample(n: usize) -> Vec<u32> {
        (0..n as u32)
            .map(|i| i.wrapping_mul(0x9E37_79B9) ^ 0xA5A5_5A5A)
            .collect()
    }

    #[test]
    fn every_backend_and_width_matches_the_oracle() {
        for n in [0usize, 1, 3, 7, 8, 15, 16, 31, 100, 257] {
            let data = sample(n);
            let expect = reference(&data);
            for backend in Backend::supported() {
                for &w in &BATCH_WIDTHS {
                    assert_eq!(
                        fold_symbols_with(backend, w, &data),
                        expect,
                        "backend={backend:?} width={w} n={n}"
                    );
                }
            }
            assert_eq!(fold_symbols(&data), expect, "active backend, n={n}");
        }
    }

    #[test]
    fn bytes_fold_matches_symbol_fold_with_padding() {
        for n in [1usize, 2, 3, 4, 5, 1023, 1024, 1025, 4096, 5000] {
            let bytes: Vec<u8> = (0..n).map(|i| (i * 37 + 11) as u8).collect();
            let mut symbols = Vec::new();
            for word in bytes.chunks(4) {
                let mut be = [0u8; 4];
                be[..word.len()].copy_from_slice(word);
                symbols.push(u32::from_be_bytes(be));
            }
            let expect = reference(&symbols);
            assert_eq!(fold_be_bytes(&bytes), expect, "n={n}");
            for backend in Backend::supported() {
                for &w in &[1usize, 8] {
                    assert_eq!(fold_be_bytes_with(backend, w, &bytes), expect, "n={n}");
                }
            }
        }
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(fold_symbols(&[]), (Gf32::ZERO, Gf32::ZERO));
        assert_eq!(fold_be_bytes(&[]), (Gf32::ZERO, Gf32::ZERO));
    }
}
