//! Runtime selection of the GF(2^32) multiplication backend.
//!
//! Three implementations of the same field exist in this crate, all
//! bit-identical (pinned by `tests/field_axioms.rs`):
//!
//! * **bit-serial reference** (`mul_ref` / `alpha_pow_ref`) — the seed
//!   oracle; never selected, only compared against;
//! * **[`Backend::Tables`]** — the portable 8-bit-window table path of
//!   `tables.rs`; works everywhere, needs 136 KiB of L1/L2 resident
//!   lookup tables;
//! * **[`Backend::Clmul`]** — hardware carry-less multiply
//!   (`PCLMULQDQ` on x86_64, `PMULL` on aarch64) with Barrett reduction;
//!   no tables, no memory traffic, and the substrate for the wide-lane
//!   batched Horner evaluation in `fold.rs`.
//!
//! The active backend is decided **once**, on first use, behind a
//! [`OnceLock`]: the `CHUNKS_GF_BACKEND` environment variable wins if set
//! (`tables` forces the portable fallback, `clmul` asks for hardware
//! carry-less multiply, `auto` or unset detects), then CPU feature
//! detection picks `Clmul` where the instruction exists and `Tables`
//! otherwise. Asking for `clmul` on a CPU without it falls back to
//! `Tables` rather than failing: the backends are interchangeable by
//! construction.
//!
//! Benchmarks and equivalence tests that must measure *both* backends in
//! one process use [`Backend::force`], which overrides the detected
//! choice. Because every backend returns identical bits, flipping the
//! override at runtime is safe anywhere.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A GF(2^32) multiplication backend.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Portable table-driven path (`tables.rs`): 16 byte-product lookups
    /// plus 4 reduction lookups per multiply.
    Tables,
    /// Hardware carry-less multiply with Barrett reduction (`clmul.rs`).
    Clmul,
}

/// Forced override: 0 = none, 1 = Tables, 2 = Clmul.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The once-detected default, honoring `CHUNKS_GF_BACKEND`.
static DETECTED: OnceLock<Backend> = OnceLock::new();

fn detect() -> Backend {
    match std::env::var("CHUNKS_GF_BACKEND").as_deref() {
        Ok("tables") => Backend::Tables,
        Ok("clmul") if Backend::Clmul.is_supported() => Backend::Clmul,
        Ok("clmul") => Backend::Tables, // asked for, not available: fall back
        _ if Backend::Clmul.is_supported() => Backend::Clmul,
        _ => Backend::Tables,
    }
}

impl Backend {
    /// The backend every dispatched operation ([`crate::Gf32::gf_mul`],
    /// [`crate::fold_symbols`], …) uses right now.
    ///
    /// ```
    /// use chunks_gf::Backend;
    /// let b = Backend::active();
    /// assert!(b.is_supported());
    /// ```
    #[inline]
    pub fn active() -> Backend {
        match FORCED.load(Ordering::Relaxed) {
            1 => Backend::Tables,
            2 => Backend::Clmul,
            _ => *DETECTED.get_or_init(detect),
        }
    }

    /// Overrides (or, with `None`, restores) the detected backend.
    ///
    /// Intended for benchmarks and backend-equivalence tests that need to
    /// exercise both paths inside one process. All backends produce
    /// bit-identical results, so concurrent readers only ever observe a
    /// change in speed, never in value. Forcing [`Backend::Clmul`] on a
    /// CPU without carry-less multiply is ignored.
    pub fn force(backend: Option<Backend>) {
        let code = match backend {
            Some(Backend::Tables) => 1,
            Some(Backend::Clmul) if Backend::Clmul.is_supported() => 2,
            Some(Backend::Clmul) => 1,
            None => 0,
        };
        FORCED.store(code, Ordering::Relaxed);
    }

    /// Whether this backend can run on the current CPU.
    ///
    /// [`Backend::Tables`] always can; [`Backend::Clmul`] requires
    /// `PCLMULQDQ` (x86_64) or `PMULL` (aarch64).
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Tables => true,
            Backend::Clmul => crate::clmul::is_supported(),
        }
    }

    /// Stable lowercase name, as recorded in `BENCH_wsc.json` rows.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Tables => "tables",
            Backend::Clmul => "clmul",
        }
    }

    /// Every backend the current CPU can run, fallback first.
    pub fn supported() -> Vec<Backend> {
        let mut v = vec![Backend::Tables];
        if Backend::Clmul.is_supported() {
            v.push(Backend::Clmul);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_is_always_supported() {
        assert!(Backend::active().is_supported());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Backend::Tables.name(), "tables");
        assert_eq!(Backend::Clmul.name(), "clmul");
    }

    #[test]
    fn force_round_trips() {
        let before = Backend::active();
        Backend::force(Some(Backend::Tables));
        assert_eq!(Backend::active(), Backend::Tables);
        Backend::force(None);
        assert_eq!(Backend::active(), before);
    }

    #[test]
    fn supported_lists_tables_first() {
        let s = Backend::supported();
        assert_eq!(s[0], Backend::Tables);
        assert!(s.len() <= 2);
    }
}
