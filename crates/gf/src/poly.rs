//! Carry-less polynomial arithmetic over GF(2) and reduction modulo the
//! field's primitive polynomial.

/// Low 32 bits of the modulus `p(x) = x^32 + x^22 + x^2 + x + 1`.
///
/// `x^32 ≡ x^22 + x^2 + x + 1 (mod p)`, so folding an overflowed bit back
/// into the field XORs this constant.
pub const POLY_LOW: u32 = (1 << 22) | (1 << 2) | (1 << 1) | 1;

/// The full 33-bit modulus, including the `x^32` term.
pub const MODULUS: u64 = (1u64 << 32) | POLY_LOW as u64;

/// Carry-less (XOR) multiplication of two 32-bit polynomials, producing the
/// unreduced 63-bit product.
///
/// Portable shift-and-xor implementation; processes the multiplier four bits
/// at a time through a small on-stack window table.
#[inline]
pub fn clmul32(a: u32, b: u32) -> u64 {
    // Window table: products of `b` with every 4-bit polynomial.
    let b = b as u64;
    let mut window = [0u64; 16];
    // window[i] for i in 0..16 is the carry-less product i ⊗ b.
    window[1] = b;
    window[2] = b << 1;
    window[4] = b << 2;
    window[8] = b << 3;
    window[3] = window[2] ^ b;
    window[5] = window[4] ^ b;
    window[6] = window[4] ^ window[2];
    window[7] = window[6] ^ b;
    window[9] = window[8] ^ b;
    window[10] = window[8] ^ window[2];
    window[11] = window[10] ^ b;
    window[12] = window[8] ^ window[4];
    window[13] = window[12] ^ b;
    window[14] = window[12] ^ window[2];
    window[15] = window[14] ^ b;

    let mut acc = 0u64;
    // Eight 4-bit digits of `a`, most significant first.
    let mut shift = 28;
    loop {
        acc ^= window[((a >> shift) & 0xF) as usize] << shift;
        if shift == 0 {
            break;
        }
        shift -= 4;
    }
    acc
}

/// Reduces a 63-bit carry-less product modulo `p(x)` to a field element.
#[inline]
pub fn reduce64(mut v: u64) -> u32 {
    // Fold the high 31 bits down twice. After the first fold the residue
    // above bit 32 has degree <= 52-32 = 20+... we simply repeat until the
    // value fits in 32 bits; two iterations always suffice for a 63-bit
    // input because each fold reduces the degree of the high part by at
    // least 10 (32 - 22).
    while v >> 32 != 0 {
        let hi = v >> 32;
        v &= 0xFFFF_FFFF;
        // x^32 ≡ POLY_LOW, so hi(x)·x^32 ≡ hi(x)·POLY_LOW.
        v ^= clmul_hi_fold(hi as u32);
    }
    v as u32
}

/// Carry-less product of a (≤31-bit) high residue with `POLY_LOW`.
#[inline]
fn clmul_hi_fold(hi: u32) -> u64 {
    // POLY_LOW has only four set bits; multiply by shifting.
    let h = hi as u64;
    (h << 22) ^ (h << 2) ^ (h << 1) ^ h
}

/// `const`-evaluable field multiplication, used to build compile-time tables.
///
/// Slower bit-serial algorithm; not for runtime hot paths.
pub const fn const_mul(a: u32, b: u32) -> u32 {
    let mut prod: u64 = 0;
    let mut i = 0;
    while i < 32 {
        if (a >> i) & 1 == 1 {
            prod ^= (b as u64) << i;
        }
        i += 1;
    }
    // Bit-serial reduction from the top.
    let mut bit = 62;
    while bit >= 32 {
        if (prod >> bit) & 1 == 1 {
            prod ^= MODULUS << (bit - 32);
        }
        bit -= 1;
    }
    prod as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference bit-serial carry-less multiply.
    fn clmul_ref(a: u32, b: u32) -> u64 {
        let mut acc = 0u64;
        for i in 0..32 {
            if (a >> i) & 1 == 1 {
                acc ^= (b as u64) << i;
            }
        }
        acc
    }

    #[test]
    fn clmul_matches_reference() {
        let samples = [
            (0u32, 0u32),
            (1, 1),
            (0xFFFF_FFFF, 0xFFFF_FFFF),
            (0x8000_0000, 2),
            (0x1234_5678, 0x9ABC_DEF0),
            (POLY_LOW, POLY_LOW),
        ];
        for (a, b) in samples {
            assert_eq!(clmul32(a, b), clmul_ref(a, b), "a={a:#x} b={b:#x}");
            assert_eq!(clmul32(b, a), clmul_ref(a, b), "commutativity");
        }
    }

    #[test]
    fn reduce_identity_below_32_bits() {
        for v in [0u64, 1, 0xFFFF_FFFF] {
            assert_eq!(reduce64(v) as u64, v);
        }
    }

    #[test]
    fn reduce_x32() {
        // x^32 reduces to POLY_LOW by definition of the modulus.
        assert_eq!(reduce64(1u64 << 32), POLY_LOW);
    }

    #[test]
    fn reduce_full_width() {
        // x^62 = x^30 · x^32 ≡ x^30 · POLY_LOW, which still overflows and
        // must fold a second time; cross-check against bit-serial reduction.
        let mut expected: u64 = 1 << 62;
        let mut bit = 62;
        while bit >= 32 {
            if (expected >> bit) & 1 == 1 {
                expected ^= MODULUS << (bit - 32);
            }
            bit -= 1;
        }
        assert_eq!(reduce64(1u64 << 62) as u64, expected);
    }

    #[test]
    fn const_mul_matches_runtime_mul() {
        let samples = [
            (1u32, 1u32),
            (2, 2),
            (0xFFFF_FFFF, 0xFFFF_FFFF),
            (0xDEAD_BEEF, 0x0BAD_F00D),
        ];
        for (a, b) in samples {
            assert_eq!(
                const_mul(a, b),
                reduce64(clmul32(a, b)),
                "a={a:#x} b={b:#x}"
            );
        }
    }
}
