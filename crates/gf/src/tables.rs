//! Precomputed tables for the GF(2^32) fast path.
//!
//! The reference multiply in [`crate::poly`] re-derives a 4-bit window table
//! on every call and reduces with a data-dependent loop; fine as an oracle,
//! too slow for the per-symbol hot path of WSC-2 verification. This module
//! trades a one-time table build (done lazily behind a [`OnceLock`]) for a
//! branch-free multiply and O(1) powers of the generator:
//!
//! * **`CL8` — 8-bit windowed carry-less multiply.** `cl8[a][b]` is the
//!   15-bit polynomial product of two byte polynomials. A 32×32 carry-less
//!   multiply becomes 16 table lookups combined with shifts and XORs
//!   (the match-table philosophy of P4 applied to field arithmetic: all
//!   data-dependent work becomes indexed loads).
//! * **`REDUCE` — byte-wise reduction by `p(x) = x^32+x^22+x^2+x+1`.**
//!   `reduce[j][b]` is `(b·x^(32+8j)) mod p`, fully reduced. Reduction is
//!   linear over GF(2), so folding the 31 overflow bits of a product is
//!   four lookups and four XORs — no loop, no branches.
//! * **`ALPHA` — cached powers of the generator.** `alpha[j][b]` is
//!   `α^(b·2^(8j))`, so `α^i` for any 32-bit exponent is at most four
//!   lookups and three multiplies. This is what makes weighting symbols at
//!   *random* positions (disordered chunk arrival) as cheap as sequential
//!   processing.
//!
//! Total footprint: 128 KiB (`CL8`) + 4 KiB (`REDUCE`) + 4 KiB (`ALPHA`).

use std::sync::OnceLock;

use crate::poly::reduce64;

/// The lazily-built table set.
pub(crate) struct Tables {
    /// `cl8[a * 256 + b]` = carry-less product of byte polynomials `a⊗b`.
    pub cl8: Box<[u16; 65_536]>,
    /// `reduce[j][b]` = `(b << (32 + 8j)) mod p(x)`.
    pub reduce: [[u32; 256]; 4],
    /// `alpha[j][b]` = `α^(b << 8j)`.
    pub alpha: [[u32; 256]; 4],
}

/// Carry-less product of two byte polynomials (bit-serial; build time only).
fn clmul8(a: u8, b: u8) -> u16 {
    let mut acc = 0u16;
    for i in 0..8 {
        if (a >> i) & 1 == 1 {
            acc ^= (b as u16) << i;
        }
    }
    acc
}

fn build() -> Tables {
    let mut cl8 = vec![0u16; 65_536].into_boxed_slice();
    for a in 0..256usize {
        for b in a..256usize {
            let p = clmul8(a as u8, b as u8);
            cl8[a * 256 + b] = p;
            cl8[b * 256 + a] = p;
        }
    }
    let cl8: Box<[u16; 65_536]> = cl8.try_into().expect("length is 65536");

    let mut reduce = [[0u32; 256]; 4];
    for (j, table) in reduce.iter_mut().enumerate() {
        for (b, slot) in table.iter_mut().enumerate() {
            *slot = reduce64((b as u64) << (32 + 8 * j));
        }
    }

    // alpha[j][b] = α^(b << 8j), built by repeated multiplication with the
    // reference path (the tables must not bootstrap from themselves).
    let mut alpha = [[0u32; 256]; 4];
    let mut step = 2u32; // α^(2^(8j)) for j = 0
    for table in alpha.iter_mut() {
        let mut acc = 1u32; // α^0
        for slot in table.iter_mut() {
            *slot = acc;
            acc = crate::poly::const_mul(acc, step);
        }
        // step ← step^(2^8), lifting to the next byte's stride.
        for _ in 0..8 {
            step = crate::poly::const_mul(step, step);
        }
    }

    Tables { cl8, reduce, alpha }
}

static TABLES: OnceLock<Tables> = OnceLock::new();

/// The process-wide table set, built on first use.
#[inline]
pub(crate) fn tables() -> &'static Tables {
    TABLES.get_or_init(build)
}

/// Table-driven multiply: 16 `CL8` lookups for the 63-bit carry-less
/// product, then 4 `REDUCE` lookups to fold it into the field.
///
/// Bit-identical to [`crate::poly::reduce64`]`(`[`crate::poly::clmul32`]`)`.
#[inline]
pub(crate) fn mul_tables(a: u32, b: u32) -> u32 {
    let t = tables();
    let [a0, a1, a2, a3] = a.to_le_bytes().map(|x| x as usize * 256);
    let [b0, b1, b2, b3] = b.to_le_bytes().map(|x| x as usize);
    let cl = &*t.cl8;

    let mut acc = cl[a0 + b0] as u64;
    acc ^= ((cl[a0 + b1] ^ cl[a1 + b0]) as u64) << 8;
    acc ^= ((cl[a0 + b2] ^ cl[a1 + b1] ^ cl[a2 + b0]) as u64) << 16;
    acc ^= ((cl[a0 + b3] ^ cl[a1 + b2] ^ cl[a2 + b1] ^ cl[a3 + b0]) as u64) << 24;
    acc ^= ((cl[a1 + b3] ^ cl[a2 + b2] ^ cl[a3 + b1]) as u64) << 32;
    acc ^= ((cl[a2 + b3] ^ cl[a3 + b2]) as u64) << 40;
    acc ^= (cl[a3 + b3] as u64) << 48;

    let lo = acc as u32;
    let [h0, h1, h2, h3] = ((acc >> 32) as u32).to_le_bytes().map(|x| x as usize);
    lo ^ t.reduce[0][h0] ^ t.reduce[1][h1] ^ t.reduce[2][h2] ^ t.reduce[3][h3]
}

/// `α^e` for a 32-bit exponent via the cached power tables: at most four
/// lookups and three multiplies, independent of `e`'s bit pattern.
#[inline]
pub(crate) fn alpha_pow_tables(e: u32) -> u32 {
    let t = tables();
    let [e0, e1, e2, e3] = e.to_le_bytes().map(|x| x as usize);
    let mut acc = t.alpha[0][e0];
    if e1 != 0 {
        acc = mul_tables(acc, t.alpha[1][e1]);
    }
    if e2 != 0 {
        acc = mul_tables(acc, t.alpha[2][e2]);
    }
    if e3 != 0 {
        acc = mul_tables(acc, t.alpha[3][e3]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{clmul32, const_mul, POLY_LOW};

    #[test]
    fn cl8_matches_bit_serial() {
        let t = tables();
        for &(a, b) in &[(0u8, 0u8), (1, 1), (0xFF, 0xFF), (0x35, 0xA7), (2, 0x80)] {
            assert_eq!(t.cl8[a as usize * 256 + b as usize], clmul8(a, b));
        }
    }

    #[test]
    fn mul_tables_matches_reference() {
        let pairs = [
            (0u32, 0u32),
            (1, 0xFFFF_FFFF),
            (2, 1 << 31),
            (0xDEAD_BEEF, 0x0BAD_F00D),
            (POLY_LOW, POLY_LOW),
            (0xFFFF_FFFF, 0xFFFF_FFFF),
        ];
        for (a, b) in pairs {
            assert_eq!(
                mul_tables(a, b),
                reduce64(clmul32(a, b)),
                "a={a:#x} b={b:#x}"
            );
        }
        // Deterministic pseudo-random sweep.
        let mut x = 0x1234_5678u32;
        let mut y = 0x9ABC_DEF0u32;
        for _ in 0..10_000 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            y ^= y << 13;
            y ^= y >> 17;
            y ^= y << 5;
            assert_eq!(
                mul_tables(x, y),
                reduce64(clmul32(x, y)),
                "x={x:#x} y={y:#x}"
            );
        }
    }

    #[test]
    fn alpha_pow_tables_matches_square_multiply() {
        for e in [
            0u32,
            1,
            2,
            255,
            256,
            65_535,
            65_536,
            (1 << 29) - 2,
            u32::MAX,
        ] {
            let mut expect = 1u32;
            let mut base = 2u32;
            let mut bits = e;
            while bits != 0 {
                if bits & 1 == 1 {
                    expect = const_mul(expect, base);
                }
                base = const_mul(base, base);
                bits >>= 1;
            }
            assert_eq!(alpha_pow_tables(e), expect, "e={e}");
        }
    }
}
