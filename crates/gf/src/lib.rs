//! Arithmetic in the finite field GF(2^32).
//!
//! This crate is the substrate for the WSC-2 weighted sum code used by the
//! chunk end-to-end error detection system (Feldmeier, SIGCOMM '93, §4;
//! McAuley, "Weighted Sum Codes for Error Detection").
//!
//! Elements are 32-bit polynomials over GF(2), reduced modulo the primitive
//! polynomial
//!
//! ```text
//! p(x) = x^32 + x^22 + x^2 + x + 1
//! ```
//!
//! Because `p` is primitive, `x` (the element `0x2`) generates the whole
//! multiplicative group, so the WSC-2 weights `alpha^i` are distinct for all
//! `i < 2^32 - 1`, comfortably covering the paper's code space of
//! `2^29 - 2` symbol positions.
//!
//! Addition is XOR (characteristic 2), so every element is its own additive
//! inverse — this is what makes the WSC-2 parities *incrementally updatable
//! and order-independent*: symbols can be absorbed or removed in any order.
//!
//! # Backends: reference, tables, hardware carry-less multiply
//!
//! Every operation exists in bit-identical implementations:
//!
//! * the **reference path** ([`Gf32::mul_ref`], [`Gf32::alpha_pow_ref`]) —
//!   windowed shift-and-XOR multiply and square-and-multiply
//!   exponentiation, dependency-free and `const`-friendly; the oracle the
//!   property tests and benchmarks compare against;
//! * the **table-driven path** ([`Gf32::mul_fast`],
//!   [`Gf32::alpha_pow`]; see `tables.rs` internals) — 8-bit windowed
//!   carry-less multiply tables, byte-wise reduction tables and cached
//!   powers of `alpha`, built once behind a `OnceLock`; the portable
//!   production fallback;
//! * the **clmul path** ([`Gf32::mul_clmul`]; see `clmul.rs`) — hardware
//!   carry-less multiply (`PCLMULQDQ` on x86_64, `PMULL` on aarch64) with
//!   Barrett reduction, plus the wide-lane batched Horner kernel behind
//!   [`fold_symbols`].
//!
//! The operator impls (`*`, `/`) and everything layered above (WSC-2, the
//! TPDU invariant, the transport receiver) dispatch through
//! [`Backend::active`], decided once at first use from CPU feature
//! detection and the `CHUNKS_GF_BACKEND` environment variable (see
//! [`backend`]).

#![deny(missing_docs)]

pub mod backend;
mod clmul;
mod fold;
mod poly;
mod tables;

pub use backend::Backend;
pub use fold::{
    fold_be_bytes, fold_be_bytes_with, fold_symbols, fold_symbols_with, BATCH_WIDTHS,
    DEFAULT_CLMUL_WIDTH,
};
pub use poly::{clmul32, reduce64, MODULUS, POLY_LOW};

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element of GF(2^32).
///
/// The wrapped `u32` is the coefficient bitmap of a degree-<32 polynomial
/// over GF(2); bit `k` is the coefficient of `x^k`.
///
/// ```
/// use chunks_gf::Gf32;
/// let a = Gf32::new(0xDEAD_BEEF);
/// assert_eq!(a + a, Gf32::ZERO);            // characteristic 2
/// assert_eq!(a * a.inv().unwrap(), Gf32::ONE);
/// assert_eq!(Gf32::alpha_pow(5), chunks_gf::ALPHA.pow(5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf32(pub u32);

/// The generator `alpha = x` of the multiplicative group of GF(2^32).
pub const ALPHA: Gf32 = Gf32(2);

/// Precomputed table of `alpha^(2^k)` for `k in 0..64`, used for fast
/// exponentiation of the generator at arbitrary positions.
const ALPHA_POW2: [u32; 64] = build_alpha_pow2();

const fn build_alpha_pow2() -> [u32; 64] {
    let mut table = [0u32; 64];
    let mut v = 2u32; // alpha^(2^0)
    let mut k = 0;
    while k < 64 {
        table[k] = v;
        v = poly::const_mul(v, v);
        k += 1;
    }
    table
}

impl Gf32 {
    /// The additive identity.
    pub const ZERO: Gf32 = Gf32(0);
    /// The multiplicative identity.
    pub const ONE: Gf32 = Gf32(1);

    /// Creates an element from its coefficient bitmap.
    #[inline]
    pub const fn new(v: u32) -> Self {
        Gf32(v)
    }

    /// Returns the raw coefficient bitmap.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Field multiplication on the active [`Backend`]: hardware carry-less
    /// multiply where the CPU has it, the table-driven path otherwise.
    ///
    /// ```
    /// use chunks_gf::Gf32;
    /// let a = Gf32::new(0xDEAD_BEEF);
    /// let b = Gf32::new(0x0BAD_F00D);
    /// assert_eq!(a.gf_mul(b), a * b);
    /// assert_eq!(a.gf_mul(b), a.mul_ref(b)); // bit-identical to the oracle
    /// ```
    #[inline]
    pub fn gf_mul(self, rhs: Gf32) -> Gf32 {
        match Backend::active() {
            Backend::Clmul => self.mul_clmul(rhs),
            Backend::Tables => self.mul_fast(rhs),
        }
    }

    /// Reference multiplication: 4-bit windowed carry-less product reduced
    /// modulo `p(x)` with a data-dependent fold loop.
    ///
    /// This is the seed implementation, kept as the oracle for
    /// [`Self::mul_fast`] equivalence tests and as the "slow path" arm of
    /// the `codes`/`invariant` benchmarks. Use `*` or [`Self::gf_mul`] in
    /// real code.
    #[inline]
    pub fn mul_ref(self, rhs: Gf32) -> Gf32 {
        Gf32(reduce64(clmul32(self.0, rhs.0)))
    }

    /// Table-driven multiplication: 16 lookups into a precomputed 8-bit
    /// carry-less multiply table plus 4 lookups into byte-wise reduction
    /// tables. Branch-free; bit-identical to [`Self::mul_ref`].
    #[inline]
    pub fn mul_fast(self, rhs: Gf32) -> Gf32 {
        Gf32(tables::mul_tables(self.0, rhs.0))
    }

    /// Hardware carry-less multiplication (`PCLMULQDQ`/`PMULL`) with
    /// Barrett reduction: three `clmul` instructions, no memory traffic.
    /// Bit-identical to [`Self::mul_ref`]; on CPUs without the
    /// instruction it silently computes via [`Self::mul_fast`] instead,
    /// so the call is safe everywhere.
    ///
    /// ```
    /// use chunks_gf::Gf32;
    /// let a = Gf32::new(0xDEAD_BEEF);
    /// let b = Gf32::new(0x0BAD_F00D);
    /// assert_eq!(a.mul_clmul(b), a.mul_ref(b));
    /// ```
    #[inline]
    pub fn mul_clmul(self, rhs: Gf32) -> Gf32 {
        Gf32(clmul::mul(self.0, rhs.0))
    }

    /// Multiplication by the generator `alpha = x`: a single shift plus a
    /// conditional reduction. This is the hot operation of sequential WSC-2
    /// encoding (one `mul_alpha` per symbol).
    #[inline]
    pub fn mul_alpha(self) -> Gf32 {
        let hi = self.0 >> 31;
        // If the top coefficient is set, shifting overflows into x^32 and we
        // fold it back with the low part of the modulus.
        Gf32((self.0 << 1) ^ (hi.wrapping_neg() & POLY_LOW))
    }

    /// Exponentiation by squaring: `self^e`.
    ///
    /// `x^0 == 1` for every `x`, including zero (empty product convention).
    ///
    /// ```
    /// use chunks_gf::Gf32;
    /// let a = Gf32::new(0xABCD_EF01);
    /// assert_eq!(a.pow(0), Gf32::ONE);
    /// assert_eq!(a.pow(3), a * a * a);
    /// assert_eq!(a.pow(7) * a.pow(5), a.pow(12)); // exponents add
    /// ```
    pub fn pow(self, mut e: u64) -> Gf32 {
        let mut base = self;
        let mut acc = Gf32::ONE;
        while e != 0 {
            if e & 1 == 1 {
                acc = acc.gf_mul(base);
            }
            base = base.gf_mul(base);
            e >>= 1;
        }
        acc
    }

    /// `alpha^i` via cached power tables: at most 4 lookups and 3
    /// multiplies, independent of `i`. This is how WSC-2 weights symbols at
    /// arbitrary (disordered) positions without paying for exponentiation.
    ///
    /// Exponents at or above the group order `2^32 - 1` are folded by
    /// Fermat (`alpha^(2^32-1) = 1`), so the result is correct for every
    /// `u64` exponent.
    ///
    /// ```
    /// use chunks_gf::{Gf32, ALPHA};
    /// assert_eq!(Gf32::alpha_pow(0), Gf32::ONE);
    /// assert_eq!(Gf32::alpha_pow(123_456), ALPHA.pow(123_456));
    /// assert_eq!(Gf32::alpha_pow(123_456), Gf32::alpha_pow_ref(123_456));
    /// ```
    #[inline]
    pub fn alpha_pow(i: u64) -> Gf32 {
        Gf32(tables::alpha_pow_tables((i % 0xFFFF_FFFF) as u32))
    }

    /// Reference `alpha^i` via the compile-time square table —
    /// O(popcount(i)) windowed multiplications.
    ///
    /// The seed implementation, kept as the oracle for [`Self::alpha_pow`]
    /// equivalence tests and the "slow path" arm of the benchmarks.
    pub fn alpha_pow_ref(i: u64) -> Gf32 {
        let mut acc = Gf32::ONE;
        let mut bits = i;
        while bits != 0 {
            let k = bits.trailing_zeros() as usize;
            acc = acc.mul_ref(Gf32(ALPHA_POW2[k]));
            bits &= bits - 1;
        }
        acc
    }

    /// Multiplicative inverse. Returns `None` for zero.
    ///
    /// Uses Fermat's little theorem: `a^(2^32 - 2) = a^-1`.
    ///
    /// ```
    /// use chunks_gf::Gf32;
    /// let a = Gf32::new(0xCAFE_BABE);
    /// assert_eq!(a * a.inv().unwrap(), Gf32::ONE);
    /// assert_eq!(Gf32::ZERO.inv(), None);
    /// ```
    pub fn inv(self) -> Option<Gf32> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow(u32::MAX as u64 - 1))
        }
    }

    /// Field division. Returns `None` when dividing by zero.
    pub fn gf_div(self, rhs: Gf32) -> Option<Gf32> {
        rhs.inv().map(|r| self.gf_mul(r))
    }
}

impl fmt::Debug for Gf32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf32({:#010x})", self.0)
    }
}

impl fmt::Display for Gf32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl Add for Gf32 {
    type Output = Gf32;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)] // GF(2^n) addition IS xor
    fn add(self, rhs: Gf32) -> Gf32 {
        Gf32(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf32 {
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)] // GF(2^n) addition IS xor
    fn add_assign(&mut self, rhs: Gf32) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf32 {
    type Output = Gf32;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)] // GF(2^n) addition IS xor
    fn sub(self, rhs: Gf32) -> Gf32 {
        // Characteristic 2: subtraction is addition.
        Gf32(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf32 {
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)] // GF(2^n) addition IS xor
    fn sub_assign(&mut self, rhs: Gf32) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf32 {
    type Output = Gf32;
    #[inline]
    fn neg(self) -> Gf32 {
        self
    }
}

impl Mul for Gf32 {
    type Output = Gf32;
    #[inline]
    fn mul(self, rhs: Gf32) -> Gf32 {
        self.gf_mul(rhs)
    }
}

impl MulAssign for Gf32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf32) {
        *self = self.gf_mul(rhs);
    }
}

impl Div for Gf32 {
    type Output = Gf32;
    /// Panics when dividing by zero, mirroring integer division.
    fn div(self, rhs: Gf32) -> Gf32 {
        self.gf_div(rhs).expect("division by zero in GF(2^32)")
    }
}

impl DivAssign for Gf32 {
    fn div_assign(&mut self, rhs: Gf32) {
        *self = *self / rhs;
    }
}

impl Sum for Gf32 {
    fn sum<I: Iterator<Item = Gf32>>(iter: I) -> Gf32 {
        iter.fold(Gf32::ZERO, Add::add)
    }
}

impl Product for Gf32 {
    fn product<I: Iterator<Item = Gf32>>(iter: I) -> Gf32 {
        iter.fold(Gf32::ONE, Mul::mul)
    }
}

impl From<u32> for Gf32 {
    fn from(v: u32) -> Self {
        Gf32(v)
    }
}

impl From<Gf32> for u32 {
    fn from(v: Gf32) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_identity_and_self_inverse() {
        let a = Gf32(0xDEAD_BEEF);
        assert_eq!(a + Gf32::ZERO, a);
        assert_eq!(a + a, Gf32::ZERO);
        assert_eq!(a - a, Gf32::ZERO);
        assert_eq!(-a, a);
    }

    #[test]
    fn multiplicative_identity() {
        let a = Gf32(0x1234_5678);
        assert_eq!(a * Gf32::ONE, a);
        assert_eq!(Gf32::ONE * a, a);
        assert_eq!(a * Gf32::ZERO, Gf32::ZERO);
    }

    #[test]
    fn mul_matches_known_small_products() {
        // x * x = x^2
        assert_eq!(Gf32(2) * Gf32(2), Gf32(4));
        // (x+1)(x+1) = x^2 + 1 over GF(2)
        assert_eq!(Gf32(3) * Gf32(3), Gf32(5));
        // x^31 * x = x^32 = x^22 + x^2 + x + 1 (mod p)
        assert_eq!(Gf32(1 << 31) * Gf32(2), Gf32(POLY_LOW));
    }

    #[test]
    fn mul_alpha_equals_mul_by_two() {
        let samples = [0u32, 1, 2, 0x8000_0000, 0xFFFF_FFFF, 0x1234_5678];
        for &s in &samples {
            assert_eq!(Gf32(s).mul_alpha(), Gf32(s) * ALPHA, "s = {s:#x}");
        }
    }

    #[test]
    fn pow_small_exponents() {
        let a = Gf32(0xABCD_EF01);
        assert_eq!(a.pow(0), Gf32::ONE);
        assert_eq!(a.pow(1), a);
        assert_eq!(a.pow(2), a * a);
        assert_eq!(a.pow(3), a * a * a);
        assert_eq!(a.pow(5), a.pow(2) * a.pow(3));
    }

    #[test]
    fn alpha_pow_matches_pow() {
        for i in [0u64, 1, 2, 31, 32, 33, 100, 12345, (1 << 29) - 2] {
            assert_eq!(Gf32::alpha_pow(i), ALPHA.pow(i), "i = {i}");
        }
    }

    #[test]
    fn alpha_pow2_table_is_consistent() {
        // alpha^(2^k) squared must equal alpha^(2^(k+1)).
        for k in 0..63 {
            let v = Gf32(ALPHA_POW2[k]);
            assert_eq!(v * v, Gf32(ALPHA_POW2[k + 1]), "k = {k}");
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for &v in &[1u32, 2, 3, 0xFFFF_FFFF, 0x8000_0001, 0x0040_0007] {
            let a = Gf32(v);
            let inv = a.inv().expect("nonzero has inverse");
            assert_eq!(a * inv, Gf32::ONE, "v = {v:#x}");
        }
        assert_eq!(Gf32::ZERO.inv(), None);
    }

    #[test]
    fn division() {
        let a = Gf32(0x1357_9BDF);
        let b = Gf32(0x0246_8ACE);
        let q = a / b;
        assert_eq!(q * b, a);
        assert_eq!(a.gf_div(Gf32::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf32(1) / Gf32::ZERO;
    }

    #[test]
    fn fermat_order() {
        // a^(2^32 - 1) == 1 for nonzero a (group order divides 2^32 - 1).
        let a = Gf32(0xCAFE_BABE);
        assert_eq!(a.pow(u32::MAX as u64), Gf32::ONE);
    }

    #[test]
    fn alpha_has_large_order() {
        // A primitive polynomial makes alpha a generator: alpha^k != 1 for
        // the maximal proper divisors of 2^32 - 1 = 3 * 5 * 17 * 257 * 65537.
        let order = u32::MAX as u64;
        for prime in [3u64, 5, 17, 257, 65537] {
            assert_ne!(
                ALPHA.pow(order / prime),
                Gf32::ONE,
                "alpha order divides (2^32-1)/{prime}"
            );
        }
        assert_eq!(ALPHA.pow(order), Gf32::ONE);
    }

    #[test]
    fn sum_and_product_impls() {
        let xs = [Gf32(1), Gf32(2), Gf32(3)];
        assert_eq!(xs.iter().copied().sum::<Gf32>(), Gf32(1 ^ 2 ^ 3));
        assert_eq!(
            xs.iter().copied().product::<Gf32>(),
            Gf32(1) * Gf32(2) * Gf32(3)
        );
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Gf32(0xAB)), "0x000000ab");
        assert_eq!(format!("{:?}", Gf32(0xAB)), "Gf32(0x000000ab)");
    }
}
