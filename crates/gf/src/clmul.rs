//! Hardware carry-less multiply backend (`PCLMULQDQ` / `PMULL`).
//!
//! The table path in `tables.rs` turns a field multiply into 20 dependent
//! loads; this module turns it into one `clmul` instruction plus a
//! **Barrett reduction** (two more `clmul`s against compile-time
//! constants), touching no memory at all. On top of the scalar multiply it
//! provides the wide-lane batched Horner kernel behind
//! [`crate::fold_symbols`]:
//!
//! * **Scalar multiply** — `R = a ⊗ b` (degree ≤ 62), then
//!   `R mod p = R ⊕ (⌊⌊R/x³²⌋·μ / x³²⌋ ⊗ p)` with `μ = ⌊x⁶⁴/p⌋`
//!   precomputed (the classic Barrett identity for polynomials).
//! * **Lane fold with lazy reduction** — `L` independent Horner chains,
//!   each stepping by the constant `C = α^L`. An accumulator `A` is kept
//!   *unreduced* at ≤ 63 bits; one step is
//!   `A' = (A≫32) ⊗ K  ⊕  (A&2³²-1) ⊗ C  ⊕  d` with `K = (x³²·C) mod p`,
//!   which preserves `A' ≡ A·C + d (mod p)` while staying in 64 bits —
//!   two `clmul`s per symbol, no reduction until the chains are combined.
//!   Because the `L` chains are independent, the CPU pipelines their
//!   multiplies where the serial Horner chain of the table path stalls on
//!   its own latency.
//!
//! Everything here is `unsafe` only because `std::arch` intrinsics demand
//! a proof that the instruction exists; every entry point below checks
//! [`is_supported`] (cached CPU feature detection) and falls back to the
//! table path, so the module's public surface is safe. Bit-equivalence
//! with `mul_ref` is pinned by `tests/field_axioms.rs` across backends.
#![allow(unsafe_code)] // std::arch intrinsics; every call site is feature-gated

use crate::poly::{reduce64, MODULUS};

/// `μ = ⌊x⁶⁴ / p(x)⌋`, the degree-32 Barrett quotient constant.
const MU: u64 = barrett_mu();

const fn barrett_mu() -> u64 {
    // Polynomial long division of x^64 by the 33-bit modulus.
    let mut quotient: u64 = 0;
    let mut rem: u128 = 1u128 << 64;
    let mut bit = 64;
    while bit >= 32 {
        if (rem >> bit) & 1 == 1 {
            quotient |= 1u64 << (bit - 32);
            rem ^= (MODULUS as u128) << (bit - 32);
        }
        bit -= 1;
    }
    quotient
}

/// Whether the current CPU has a carry-less multiply instruction
/// (`PCLMULQDQ` on x86_64, `PMULL` on aarch64). Detection is cached by
/// `std::arch`.
#[inline]
pub(crate) fn is_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("sse2")
    }
    #[cfg(target_arch = "aarch64")]
    {
        std::arch::is_aarch64_feature_detected!("pmull")
            && std::arch::is_aarch64_feature_detected!("aes")
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// Field multiply on the clmul backend; falls back to the table path when
/// the instruction is missing (so the function is safe everywhere).
#[inline]
pub(crate) fn mul(a: u32, b: u32) -> u32 {
    if is_supported() {
        // SAFETY: `is_supported` proved the target features exist.
        unsafe { arch::mul_unchecked(a, b) }
    } else {
        crate::tables::mul_tables(a, b)
    }
}

/// `(Σ dᵢ, Σ αⁱ·dᵢ)` over `data` via `lanes` independent Horner chains
/// (`lanes` ∈ {2, 4, 8, 16}); falls back to the portable serial fold when
/// the instruction is missing.
pub(crate) fn fold_symbols(data: &[u32], lanes: usize) -> (u32, u32) {
    if !is_supported() {
        return crate::fold::fold_serial(data);
    }
    // SAFETY: `is_supported` proved the target features exist.
    unsafe {
        match lanes {
            2 => arch::fold_lanes::<2>(data),
            4 => arch::fold_lanes::<4>(data),
            16 => arch::fold_lanes::<16>(data),
            _ => arch::fold_lanes::<8>(data),
        }
    }
}

/// Per-lane constants for the lazy-reduction step: `C = α^L` and
/// `K = (x³²·C) mod p`, plus the Horner weight table `α^j` for the final
/// lane combination.
fn lane_constants(lanes: usize) -> (u32, u32) {
    let c = crate::Gf32::alpha_pow_ref(lanes as u64).value();
    let k = reduce64((c as u64) << 32);
    (c, k)
}

/// Combines lane accumulators and the serial tail into `(p0, Σ αⁱ·dᵢ)`.
///
/// `lane_values[j]` holds `Σ_k α^(kL)·d_(kL+j)` already reduced; the lane
/// identity `Σ αⁱ dᵢ = Σ_j α^j · lane_j` is evaluated by Horner from the
/// top lane down. The tail (positions `blocks·L ..`) was folded serially
/// into `tail`, entering at weight `α^(blocks·L)`.
fn combine_lanes(lane_values: &[u32], tail: u32, tail_offset: u64, p0: u32) -> (u32, u32) {
    let mut horner = crate::Gf32::ZERO;
    for &a in lane_values.iter().rev() {
        horner = horner.mul_alpha() + crate::Gf32::new(a);
    }
    let tail_weight = crate::Gf32::alpha_pow_ref(tail_offset);
    let h = horner + tail_weight * crate::Gf32::new(tail);
    (p0, h.value())
}

/// Serial mul_alpha Horner over the ≤ L-1 tail symbols past the last full
/// block, returning `(Σ αᵗ·d_(off+t), ⊕ tail symbols)`.
fn fold_tail(tail: &[u32]) -> (u32, u32) {
    let mut horner = crate::Gf32::ZERO;
    let mut p0 = 0u32;
    for &d in tail.iter().rev() {
        horner = horner.mul_alpha() + crate::Gf32::new(d);
        p0 ^= d;
    }
    (horner.value(), p0)
}

#[cfg(target_arch = "x86_64")]
mod arch {
    use super::{combine_lanes, fold_tail, lane_constants, MODULUS, MU};
    use crate::poly::reduce64;
    use std::arch::x86_64::{
        _mm_and_si128, _mm_clmulepi64_si128, _mm_cvtsi128_si64, _mm_cvtsi32_si128, _mm_set1_epi64x,
        _mm_set_epi64x, _mm_setzero_si128, _mm_srli_epi64, _mm_xor_si128,
    };

    /// Barrett-reduced field multiply: three `PCLMULQDQ`s, no memory.
    #[target_feature(enable = "pclmulqdq", enable = "sse2")]
    pub(super) unsafe fn mul_unchecked(a: u32, b: u32) -> u32 {
        let ab = _mm_set_epi64x(b as i64, a as i64);
        // R = a ⊗ b, degree ≤ 62.
        let r = _mm_clmulepi64_si128::<0x10>(ab, ab);
        let consts = _mm_set_epi64x(MODULUS as i64, MU as i64);
        // T2 = ⌊(⌊R/x³²⌋ ⊗ μ) / x³²⌋.
        let t1 = _mm_srli_epi64::<32>(r);
        let t2 = _mm_srli_epi64::<32>(_mm_clmulepi64_si128::<0x00>(t1, consts));
        // R ⊕ T2 ⊗ p: the low 32 bits are R mod p.
        let t3 = _mm_clmulepi64_si128::<0x10>(t2, consts);
        _mm_cvtsi128_si64(_mm_xor_si128(r, t3)) as u32
    }

    /// `L`-lane batched Horner with lazy reduction (see module docs).
    #[target_feature(enable = "pclmulqdq", enable = "sse2")]
    pub(super) unsafe fn fold_lanes<const L: usize>(data: &[u32]) -> (u32, u32) {
        let (c, k) = lane_constants(L);
        // CK.low64 = C, CK.high64 = K.
        let ck = _mm_set_epi64x(k as i64, c as i64);
        let lo_mask = _mm_set1_epi64x(0xFFFF_FFFF);
        let blocks = data.len() / L;
        let mut acc = [_mm_setzero_si128(); L];
        let mut p0 = 0u32;
        // Horner over blocks, last block first: acc_j ← acc_j·α^L + d.
        for k_blk in (0..blocks).rev() {
            let base = k_blk * L;
            for j in 0..L {
                let d = data[base + j];
                p0 ^= d;
                let a = acc[j];
                // (A≫32) ⊗ K  ⊕  (A & 2³²-1) ⊗ C  ⊕  d
                let hi = _mm_srli_epi64::<32>(a);
                let lo = _mm_and_si128(a, lo_mask);
                let prod = _mm_xor_si128(
                    _mm_clmulepi64_si128::<0x10>(hi, ck),
                    _mm_clmulepi64_si128::<0x00>(lo, ck),
                );
                acc[j] = _mm_xor_si128(prod, _mm_cvtsi32_si128(d as i32));
            }
        }
        let mut lane_values = [0u32; L];
        for j in 0..L {
            lane_values[j] = reduce64(_mm_cvtsi128_si64(acc[j]) as u64);
        }
        let (tail_h, tail_p0) = fold_tail(&data[blocks * L..]);
        combine_lanes(&lane_values, tail_h, (blocks * L) as u64, p0 ^ tail_p0)
    }
}

#[cfg(target_arch = "aarch64")]
mod arch {
    use super::{combine_lanes, fold_tail, lane_constants, MODULUS, MU};
    use crate::poly::reduce64;
    use std::arch::aarch64::vmull_p64;

    /// Barrett-reduced field multiply via `PMULL`.
    #[target_feature(enable = "neon", enable = "aes")]
    pub(super) unsafe fn mul_unchecked(a: u32, b: u32) -> u32 {
        let r = vmull_p64(a as u64, b as u64) as u64;
        let t2 = (vmull_p64(r >> 32, MU) as u64) >> 32;
        let t3 = vmull_p64(t2, MODULUS) as u64;
        (r ^ t3) as u32
    }

    /// `L`-lane batched Horner with lazy reduction (see module docs).
    #[target_feature(enable = "neon", enable = "aes")]
    pub(super) unsafe fn fold_lanes<const L: usize>(data: &[u32]) -> (u32, u32) {
        let (c, k) = lane_constants(L);
        let blocks = data.len() / L;
        let mut acc = [0u64; L];
        let mut p0 = 0u32;
        for k_blk in (0..blocks).rev() {
            let base = k_blk * L;
            for j in 0..L {
                let d = data[base + j];
                p0 ^= d;
                let a = acc[j];
                acc[j] = (vmull_p64(a >> 32, k as u64) as u64)
                    ^ (vmull_p64(a & 0xFFFF_FFFF, c as u64) as u64)
                    ^ d as u64;
            }
        }
        let mut lane_values = [0u32; L];
        for j in 0..L {
            lane_values[j] = reduce64(acc[j]);
        }
        let (tail_h, tail_p0) = fold_tail(&data[blocks * L..]);
        combine_lanes(&lane_values, tail_h, (blocks * L) as u64, p0 ^ tail_p0)
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod arch {
    /// Unreachable on this architecture: `is_supported` is `false`, so the
    /// safe wrappers above never dispatch here.
    pub(super) unsafe fn mul_unchecked(_a: u32, _b: u32) -> u32 {
        unreachable!("clmul backend dispatched without hardware support")
    }

    /// Unreachable on this architecture (see [`mul_unchecked`]).
    pub(super) unsafe fn fold_lanes<const L: usize>(_data: &[u32]) -> (u32, u32) {
        unreachable!("clmul backend dispatched without hardware support")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{clmul32, POLY_LOW};

    #[test]
    fn barrett_mu_is_the_x64_quotient() {
        // μ ⊗ p  ⊕  (x^64 mod p) must reconstruct x^64 exactly, where
        // x^64 mod p = (x^32 mod p)² mod p = POLY_LOW ⊗ POLY_LOW mod p.
        let mut mu_p: u128 = 0;
        for i in 0..64 {
            if (MU >> i) & 1 == 1 {
                mu_p ^= (MODULUS as u128) << i;
            }
        }
        let x64_mod_p = reduce64(clmul32(POLY_LOW, POLY_LOW)) as u128;
        assert_eq!(mu_p ^ x64_mod_p, 1u128 << 64);
    }

    #[test]
    fn mul_matches_reference() {
        let pairs = [
            (0u32, 0u32),
            (1, 0xFFFF_FFFF),
            (2, 1 << 31),
            (0xDEAD_BEEF, 0x0BAD_F00D),
            (POLY_LOW, POLY_LOW),
            (0xFFFF_FFFF, 0xFFFF_FFFF),
        ];
        for (a, b) in pairs {
            assert_eq!(mul(a, b), reduce64(clmul32(a, b)), "a={a:#x} b={b:#x}");
        }
        let mut x = 0x1234_5678u32;
        let mut y = 0x9ABC_DEF0u32;
        for _ in 0..10_000 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            y ^= y << 13;
            y ^= y >> 17;
            y ^= y << 5;
            assert_eq!(mul(x, y), reduce64(clmul32(x, y)), "x={x:#x} y={y:#x}");
        }
    }

    #[test]
    fn fold_matches_serial_reference() {
        let data: Vec<u32> = (0..1000u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let expect = crate::fold::fold_serial(&data);
        for lanes in [2usize, 4, 8, 16] {
            for n in [0usize, 1, 2, 7, 15, 16, 17, 63, 1000] {
                let expect_n = crate::fold::fold_serial(&data[..n]);
                assert_eq!(
                    fold_symbols(&data[..n], lanes),
                    expect_n,
                    "lanes={lanes} n={n}"
                );
            }
            assert_eq!(fold_symbols(&data, lanes), expect, "lanes={lanes}");
        }
    }
}
