//! Property-based verification of the GF(2^32) field axioms.

use chunks_gf::{fold_symbols_with, Backend, Gf32, ALPHA, BATCH_WIDTHS};
use proptest::prelude::*;

fn elem() -> impl Strategy<Value = Gf32> {
    any::<u32>().prop_map(Gf32::new)
}

proptest! {
    #[test]
    fn addition_commutes(a in elem(), b in elem()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn addition_associates(a in elem(), b in elem(), c in elem()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn multiplication_commutes(a in elem(), b in elem()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn multiplication_associates(a in elem(), b in elem(), c in elem()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributivity(a in elem(), b in elem(), c in elem()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn inverse_cancels(a in elem().prop_filter("nonzero", |a| !a.is_zero())) {
        let inv = a.inv().unwrap();
        prop_assert_eq!(a * inv, Gf32::ONE);
        prop_assert_eq!(a / a, Gf32::ONE);
    }

    #[test]
    fn no_zero_divisors(a in elem(), b in elem()) {
        if (a * b).is_zero() {
            prop_assert!(a.is_zero() || b.is_zero());
        }
    }

    #[test]
    fn pow_adds_exponents(a in elem(), e1 in 0u64..1000, e2 in 0u64..1000) {
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    #[test]
    fn alpha_pow_consistent(i in 0u64..(1 << 30)) {
        prop_assert_eq!(Gf32::alpha_pow(i), ALPHA.pow(i));
    }

    #[test]
    fn mul_alpha_is_mul_by_alpha(a in elem()) {
        prop_assert_eq!(a.mul_alpha(), a * ALPHA);
    }

    #[test]
    fn frobenius_is_additive(a in elem(), b in elem()) {
        // Squaring is a field automorphism in characteristic 2.
        prop_assert_eq!((a + b) * (a + b), a * a + b * b);
    }

    #[test]
    fn mul_fast_matches_reference(a in elem(), b in elem()) {
        // The table-driven fast path is bit-identical to the seed
        // shift-and-XOR oracle over the whole input space.
        prop_assert_eq!(a.mul_fast(b), a.mul_ref(b));
    }

    #[test]
    fn alpha_pow_matches_reference(i in any::<u64>()) {
        // Cached power tables (with mod-(2^32 - 1) exponent folding) agree
        // with the seed square-and-multiply path for every u64 exponent.
        prop_assert_eq!(Gf32::alpha_pow(i), Gf32::alpha_pow_ref(i));
    }

    #[test]
    fn mul_clmul_matches_reference(a in elem(), b in elem()) {
        // The carry-less-multiply + Barrett-reduction path is bit-identical
        // to the seed shift-and-XOR oracle. On CPUs without clmul the
        // wrapper falls back to the table path, which the property above
        // already pins — so this holds everywhere.
        prop_assert_eq!(a.mul_clmul(b), a.mul_ref(b));
    }

    #[test]
    fn dispatched_mul_matches_reference(a in elem(), b in elem()) {
        // Whatever backend `Backend::active()` picked, `*` is the oracle.
        prop_assert_eq!(a * b, a.mul_ref(b));
    }

    #[test]
    fn batched_folds_match_reference(
        data in proptest::collection::vec(any::<u32>(), 0..200),
        start in 0u64..(1 << 20),
    ) {
        // Reference: symbol-at-a-time accumulation on the seed arithmetic.
        let mut p0 = Gf32::ZERO;
        let mut h = Gf32::ZERO;
        for (k, &d) in data.iter().enumerate() {
            let d = Gf32::new(d);
            p0 += d;
            h += Gf32::alpha_pow_ref(start + k as u64).mul_ref(d);
        }
        let w = Gf32::alpha_pow_ref(start);
        for backend in Backend::supported() {
            for &width in &BATCH_WIDTHS {
                let (fp0, fh) = fold_symbols_with(backend, width, &data);
                prop_assert_eq!(fp0, p0, "p0: backend={:?} width={}", backend, width);
                prop_assert_eq!(w.mul_ref(fh), h, "H: backend={:?} width={}", backend, width);
            }
        }
        let (ap0, ah) = chunks_gf::fold_symbols(&data);
        prop_assert_eq!(ap0, p0);
        prop_assert_eq!(w.mul_ref(ah), h);
    }
}
