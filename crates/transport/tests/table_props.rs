//! Property suite for the open-addressed connection table: an unbounded
//! table must agree operation-for-operation with a `HashMap` oracle under
//! arbitrary admit/lookup/retire/idle-sweep churn (including growth), a
//! bounded table must never exceed `max_live` and must replay the same
//! schedule — evictions included — deterministically, and with a sample
//! width covering the whole table the eviction policy must be exact LRU.

use std::collections::HashMap;

use chunks_transport::{ConnTable, ConnectionParams, DeliveryMode, Receiver, TableConfig};
use chunks_wsc::InvariantLayout;
use proptest::prelude::*;

/// Keys are drawn from a universe small enough that collisions, re-admits
/// and retire-then-readmit sequences all happen, but large enough to force
/// index growth from the default 8-connection sizing.
const KEYS: u32 = 96;

fn params(conn_id: u32) -> ConnectionParams {
    ConnectionParams {
        conn_id,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: 8,
    }
}

fn fresh(conn_id: u32) -> Receiver {
    Receiver::new(
        DeliveryMode::Immediate,
        params(conn_id),
        InvariantLayout::with_data_symbols(16),
        64,
    )
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Admit(u32),
    Lookup(u32),
    Retire(u32),
    /// Evict everything idle for longer than this many ticks.
    IdleSweep(u64),
}

/// Weighted 4:3:2:1 over admit/lookup/retire/idle-sweep (the offline
/// proptest stand-in has no `prop_oneof`, so the weights are drawn by hand).
fn op_strategy() -> impl Strategy<Value = Op> {
    (0u32..10, 0..KEYS, 1u64..40).prop_map(|(w, k, age)| match w {
        0..=3 => Op::Admit(k),
        4..=6 => Op::Lookup(k),
        7..=8 => Op::Retire(k),
        _ => Op::IdleSweep(age),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unbounded_table_agrees_with_a_hashmap_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        // Oracle: key → last touch. Unbounded, so nothing is ever evicted
        // behind the model's back and every step is exactly predictable.
        let mut table = ConnTable::new(TableConfig::default());
        let mut model: HashMap<u32, u64> = HashMap::new();
        let mut now: u64 = 0;
        for op in &ops {
            now += 1;
            match *op {
                Op::Admit(k) => {
                    let out = table.admit(params(k), now, || fresh(k), |_| {});
                    prop_assert_eq!(out.admitted, !model.contains_key(&k));
                    prop_assert!(!out.refused);
                    prop_assert_eq!(out.evicted, None);
                    model.insert(k, now);
                }
                Op::Lookup(k) => {
                    let hit = table.lookup(k, now).is_some();
                    prop_assert_eq!(hit, model.contains_key(&k));
                    if hit {
                        model.insert(k, now);
                    }
                }
                Op::Retire(k) => {
                    prop_assert_eq!(table.retire(k, now), model.remove(&k).is_some());
                }
                Op::IdleSweep(age) => {
                    let before = now.saturating_sub(age);
                    let evicted = table.evict_idle(before, now);
                    let dead: Vec<u32> = model
                        .iter()
                        .filter(|&(_, &t)| t < before)
                        .map(|(&k, _)| k)
                        .collect();
                    prop_assert_eq!(evicted, dead.len());
                    for k in dead {
                        model.remove(&k);
                    }
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
        // Presence agrees across the whole key universe and the live set is
        // exactly the model's.
        for k in 0..KEYS {
            prop_assert_eq!(table.contains(k), model.contains_key(&k));
        }
        let mut live: Vec<u32> = table.iter().map(|(k, _)| k).collect();
        live.sort_unstable();
        let mut want: Vec<u32> = model.keys().copied().collect();
        want.sort_unstable();
        prop_assert_eq!(live, want);
        // Accounting closes: every admission is live or was evicted, nothing
        // was refused, and every eviction's shell is pooled or re-armed.
        let s = table.stats;
        prop_assert_eq!(s.admissions - s.evictions, table.len() as u64);
        prop_assert_eq!(s.refusals, 0);
        prop_assert_eq!(table.pooled() as u64, s.evictions - s.pooled_admissions);
    }

    #[test]
    fn bounded_table_never_exceeds_max_live_and_replays_deterministically(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        max_live in 1usize..24,
    ) {
        // Sampled LRU makes the *victim* policy-defined rather than
        // model-predictable, so the bounded table is pinned two ways:
        // invariants that must hold at every step, and a full replay that
        // must reproduce the same evictions, stats and survivors.
        let run = |ops: &[Op]| {
            let mut table = ConnTable::new(TableConfig::for_capacity(4).with_max_live(max_live));
            let mut evicted: Vec<Option<u32>> = Vec::new();
            let mut now = 0u64;
            for op in ops {
                now += 1;
                match *op {
                    Op::Admit(k) => {
                        let out = table.admit(params(k), now, || fresh(k), |_| {});
                        assert!(!out.refused, "live > 0 admissions must never refuse");
                        evicted.push(out.evicted);
                    }
                    Op::Lookup(k) => {
                        table.lookup(k, now);
                    }
                    Op::Retire(k) => {
                        table.retire(k, now);
                    }
                    Op::IdleSweep(age) => {
                        table.evict_idle(now.saturating_sub(age), now);
                    }
                }
                assert!(table.len() <= max_live, "live exceeded max_live");
            }
            let mut live: Vec<u32> = table.iter().map(|(k, _)| k).collect();
            live.sort_unstable();
            (live, table.stats, evicted)
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }
}

#[test]
fn full_width_sample_evicts_in_exact_lru_order() {
    // With `lru_sample` at least the live count, the clock-hand sample
    // covers every occupied slot and the policy degenerates to true LRU:
    // a known touch order must be evicted back in exactly that order.
    let mut table = ConnTable::new(TableConfig::for_capacity(8).with_max_live(8));
    let mut now = 0u64;
    for k in 0..8u32 {
        now += 1;
        table.admit(params(k), now, || fresh(k), |_| {});
    }
    // Touch in reverse: key 7 becomes the least recently used.
    for k in (0..8u32).rev() {
        now += 1;
        assert!(table.lookup(k, now).is_some());
    }
    let mut evicted = Vec::new();
    for k in 100..108u32 {
        now += 1;
        let out = table.admit(params(k), now, || fresh(k), |_| {});
        assert!(out.admitted);
        evicted.push(out.evicted.expect("full table must evict to admit"));
    }
    assert_eq!(evicted, vec![7, 6, 5, 4, 3, 2, 1, 0]);
    assert_eq!(table.stats.evictions, 8);
    assert_eq!(table.stats.refusals, 0);
}
