//! An end-to-end transport protocol built on chunks — the system the paper
//! sketches across §1–§4, assembled: Application Layer Framing on the X
//! level, TPDU error control on the T level, a non-multiplexed connection on
//! the C level, WSC-2 end-to-end error detection over the fragmentation
//! invariant, and a receiver that can process chunks the moment they arrive.
//!
//! * [`frame`] — cuts an application stream (with ALF frame boundaries) into
//!   TPDUs of labelled chunks plus one ED control chunk each;
//! * [`sender`] — windows TPDUs, packs them into packets for a path MTU,
//!   retransmits *with identical identifiers* (§3.3), and adapts the TPDU
//!   size to observed loss (the paper's answer to Kent–Mogul);
//! * [`receiver`] — the three §3.3 strategies (immediate processing /
//!   reordering / physical reassembly) over one shared virtual-reassembly
//!   and verification engine, with data-touch accounting that makes the
//!   paper's "reassembly requires two accesses to each piece of data" claim
//!   measurable;
//! * [`ack`] — acknowledgment encoding so sender and receiver close the
//!   error-control loop;
//! * [`mux`] — packets shared by multiple connections, data, signals and
//!   piggybacked acks (Appendix A), and TYPE-field demultiplexing;
//! * [`conn`] — connection establishment/teardown signalling that carries
//!   the parameters compressed headers rely on (Appendix A);
//! * [`rto`] — the reliability layer's timer half: deterministic
//!   virtual-clock RTO estimation (Jacobson SRTT/RTTVAR, Karn's rule),
//!   exponential backoff, bounded retry budgets, and the typed dead-peer
//!   verdict that replaces an ack-loss deadlock;
//! * [`parallel`] — the order-free parallel receive pipeline: arriving
//!   chunks fan out to shard-per-worker receivers by connection label, with
//!   a merge stage that folds per-worker verification transcripts; provably
//!   equivalent to the serial path (`tests/parallel_differential.rs`);
//! * [`table`] — the open-addressed, Fibonacci-hashed `C.ID → Receiver`
//!   table behind both demux paths: robin-hood probing, pooled receiver
//!   shells for allocation-free admission, deterministic virtual-clock LRU
//!   eviction, and capacity back-pressure (see `docs/SCALE.md`).
//!
//! The shortest closed loop — one sender's initial transmission processed
//! on arrival by one receiver:
//!
//! ```
//! use chunks_transport::{ConnectionParams, DeliveryMode, Receiver, Sender, SenderConfig};
//! use chunks_wsc::InvariantLayout;
//!
//! let params = ConnectionParams {
//!     conn_id: 1,
//!     elem_size: 1,
//!     initial_csn: 0,
//!     tpdu_elements: 32,
//! };
//! let layout = InvariantLayout::with_data_symbols(1024);
//! let mut tx = Sender::new(SenderConfig {
//!     params,
//!     layout,
//!     mtu: 256,
//!     min_tpdu_elements: 4,
//!     max_tpdu_elements: 64,
//! });
//! let mut rx = Receiver::new(DeliveryMode::Immediate, params, layout, 1024);
//! tx.submit_simple(b"chunks process on arrival", 0xA, false);
//! for packet in tx.packets_for_pending().unwrap() {
//!     rx.handle_packet(&packet, 0);
//! }
//! assert_eq!(&rx.app_data()[..25], b"chunks process on arrival");
//! ```

#![deny(missing_docs)]

pub mod ack;
pub mod budget;
pub mod conn;
pub mod frame;
pub mod mtu;
pub mod mux;
pub mod parallel;
pub mod receiver;
pub mod rto;
pub mod sender;
pub mod session;
pub mod stream;
pub mod table;

pub use ack::AckInfo;
pub use budget::{GlobalBudget, ResourceBudget};
pub use conn::{ConnectionParams, Signal};
pub use frame::{AlfFrame, Framer, Tpdu};
pub use mtu::MtuProbe;
pub use mux::{ConnectionDemux, DemuxEvent, PacketMux};
pub use parallel::{
    shard_of, ConnSpec, ControlEvent, ControlKind, DispatchStats, Engine, ParallelOutcome,
    ParallelReceiver, Schedule, StageTimings, SyncSnapshot,
};
pub use receiver::{DeliveryMode, FailureReason, Receiver, RxEvent, RxStats};
pub use rto::{DegradePolicy, RetransmitTimer, RtoConfig, TimerVerdict, TransportError};
pub use sender::{Sender, SenderConfig};
pub use session::{ReliabilityStats, Session};
pub use stream::{StreamReceiver, StreamStats};
pub use table::{AdmitOutcome, ConnSet, ConnTable, TableConfig, TableStats};
