//! Timer-driven retransmission: RTO estimation, exponential backoff, and
//! the dead-peer verdict.
//!
//! The ack-driven repair loop of [`crate::sender`] answers the paper's §3.3
//! selective-retransmission story, but it only ever *reacts* to feedback: a
//! lost or corrupted ack stalls the conversation forever. This module adds
//! the missing half — a deterministic, virtual-clock retransmission timer
//! in the style of SCTP's validated machinery (Weinrank et al.):
//!
//! * **SRTT/RTTVAR estimation** (Jacobson): every ack of a never-
//!   retransmitted TPDU contributes an RTT sample (Karn's rule — samples
//!   from retransmitted TPDUs are ambiguous and discarded);
//! * **exponential backoff with a cap**: each timer fire doubles that
//!   TPDU's RTO up to [`RtoConfig::max_rto_ns`]; a fresh RTT sample resets
//!   the backoff;
//! * **bounded retry budget**: after [`RtoConfig::max_retries`] timer-driven
//!   retransmissions a TPDU is *exhausted* — the caller either sheds it
//!   (graceful degradation: drop the TPDU, keep the window moving) or
//!   surfaces [`TransportError::PeerUnreachable`] instead of hanging.
//!
//! Everything is driven by the caller's clock (`now` in nanoseconds of
//! virtual time), so every schedule is exactly reproducible — the property
//! the soak harness (`experiments soak`) leans on.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use chunks_core::error::CoreError;

/// Errors surfaced by the reliability layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TransportError {
    /// A chunk-level encode/decode error bubbled up from the core.
    Core(CoreError),
    /// The retry budget of a TPDU emptied without any acknowledgment: the
    /// peer is declared unreachable. This is the typed verdict that replaces
    /// an ack-loss deadlock.
    PeerUnreachable {
        /// The connection that gave up.
        conn_id: u32,
        /// Connection-space start of the TPDU that exhausted its budget.
        tpdu_start: u64,
        /// Timer-driven retransmissions attempted for that TPDU.
        retries: u32,
        /// Virtual nanoseconds since the TPDU was first sent.
        elapsed_ns: u64,
    },
    /// The receiver's resource budget ran out and payload bytes were shed —
    /// degradation was graceful (typed, counted) rather than an allocation
    /// blow-up, but the caller should know delivery is running partial.
    BudgetExhausted {
        /// The connection that shed data.
        conn_id: u32,
        /// Payload bytes shed so far.
        shed_bytes: u64,
        /// Idle groups evicted to make room before shedding began.
        evictions: u64,
        /// Bytes still held in staging buffers at the time of the report.
        held_bytes: u64,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Core(e) => write!(f, "core error: {e}"),
            TransportError::PeerUnreachable {
                conn_id,
                tpdu_start,
                retries,
                elapsed_ns,
            } => write!(
                f,
                "peer unreachable on connection {conn_id}: TPDU at {tpdu_start} \
                 unacked after {retries} retransmissions over {elapsed_ns} ns"
            ),
            TransportError::BudgetExhausted {
                conn_id,
                shed_bytes,
                evictions,
                held_bytes,
            } => write!(
                f,
                "resource budget exhausted on connection {conn_id}: shed \
                 {shed_bytes} bytes after {evictions} evictions ({held_bytes} bytes held)"
            ),
        }
    }
}

impl Error for TransportError {}

impl From<CoreError> for TransportError {
    fn from(e: CoreError) -> Self {
        TransportError::Core(e)
    }
}

/// What to do when a TPDU's retry budget empties.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DegradePolicy {
    /// Surface [`TransportError::PeerUnreachable`] — the transfer must be
    /// complete or cleanly dead, never silently partial.
    Abort,
    /// Shed the TPDU: drop it from the window, count it, and keep the rest
    /// of the stream moving (the BPP-style qualitative degradation).
    Shed,
}

/// Static configuration of the retransmission timer.
#[derive(Clone, Copy, Debug)]
pub struct RtoConfig {
    /// RTO before the first RTT sample arrives.
    pub initial_rto_ns: u64,
    /// Lower clamp on the computed RTO.
    pub min_rto_ns: u64,
    /// Upper clamp on the computed RTO (backoff saturates here).
    pub max_rto_ns: u64,
    /// Timer-driven retransmissions allowed per TPDU before the budget
    /// empties.
    pub max_retries: u32,
    /// Budget-exhaustion behaviour.
    pub policy: DegradePolicy,
}

impl Default for RtoConfig {
    fn default() -> Self {
        RtoConfig {
            initial_rto_ns: 3_000_000, // 3 ms of virtual time
            min_rto_ns: 1_000_000,
            max_rto_ns: 60_000_000,
            max_retries: 8,
            policy: DegradePolicy::Abort,
        }
    }
}

/// Per-TPDU timer state.
#[derive(Clone, Copy, Debug)]
struct Entry {
    /// When the TPDU (or its latest retransmission) went out.
    sent_at: u64,
    /// When the timer fires.
    expires_at: u64,
    /// When the TPDU was *first* sent (for the verdict's elapsed time).
    first_sent_at: u64,
    /// Timer-driven retransmissions so far.
    retries: u32,
    /// Backoff exponent (doublings applied on top of the base RTO).
    backoff: u32,
    /// True once the TPDU has been retransmitted (Karn: no RTT sample).
    retransmitted: bool,
}

/// A TPDU the timer says is due for action.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimerVerdict {
    /// Retransmit the TPDU at this start (identical labels, §3.3) and back
    /// its timer off.
    Retransmit(u64),
    /// The TPDU's retry budget is empty; apply the degrade policy.
    Exhausted {
        /// Connection-space start of the TPDU.
        start: u64,
        /// Retransmissions that were attempted.
        retries: u32,
        /// Virtual nanoseconds since first transmission.
        elapsed_ns: u64,
    },
}

/// Deterministic virtual-clock retransmission timer for one sender.
#[derive(Clone, Debug)]
pub struct RetransmitTimer {
    cfg: RtoConfig,
    /// Smoothed RTT, `None` until the first sample.
    srtt_ns: Option<u64>,
    /// RTT variance estimate.
    rttvar_ns: u64,
    /// Armed TPDUs by connection-space start.
    entries: BTreeMap<u64, Entry>,
    /// Timer fires observed (monotonic counter, for stats).
    pub fires: u64,
    /// RTT samples absorbed.
    pub samples: u64,
}

impl RetransmitTimer {
    /// Creates a timer.
    pub fn new(cfg: RtoConfig) -> Self {
        RetransmitTimer {
            cfg,
            srtt_ns: None,
            rttvar_ns: 0,
            entries: BTreeMap::new(),
            fires: 0,
            samples: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> RtoConfig {
        self.cfg
    }

    /// The current base RTO (before per-TPDU backoff), Jacobson's
    /// `SRTT + 4·RTTVAR` clamped to the configured bounds.
    pub fn base_rto_ns(&self) -> u64 {
        match self.srtt_ns {
            None => self.cfg.initial_rto_ns,
            Some(srtt) => {
                (srtt + 4 * self.rttvar_ns).clamp(self.cfg.min_rto_ns, self.cfg.max_rto_ns)
            }
        }
    }

    /// The RTO a given TPDU is currently running under (base shifted by its
    /// backoff exponent, capped).
    pub fn rto_for(&self, start: u64) -> Option<u64> {
        let e = self.entries.get(&start)?;
        Some(self.backed_off(e.backoff))
    }

    fn backed_off(&self, exponent: u32) -> u64 {
        self.base_rto_ns()
            .saturating_shl(exponent.min(16))
            .min(self.cfg.max_rto_ns)
            .max(self.cfg.min_rto_ns)
    }

    /// Arms (or re-arms) the timer for a TPDU that just went on the wire.
    /// `retransmission` marks timer- or ack-driven re-sends: their acks are
    /// ambiguous and contribute no RTT sample (Karn's rule).
    pub fn on_send(&mut self, start: u64, now: u64, retransmission: bool) {
        let backoff = self
            .entries
            .get(&start)
            .map(|e| e.backoff)
            .unwrap_or_default();
        let rto = self.backed_off(backoff);
        let entry = self.entries.entry(start).or_insert(Entry {
            sent_at: now,
            expires_at: now + rto,
            first_sent_at: now,
            retries: 0,
            backoff,
            retransmitted: retransmission,
        });
        entry.sent_at = now;
        entry.expires_at = now + rto;
        entry.retransmitted |= retransmission;
    }

    /// Disarms a TPDU's timer on acknowledgment; a never-retransmitted TPDU
    /// yields an RTT sample that updates SRTT/RTTVAR and (by recomputing the
    /// base RTO) implicitly resets the backoff for future sends.
    pub fn on_ack(&mut self, start: u64, now: u64) {
        if let Some(e) = self.entries.remove(&start) {
            if !e.retransmitted {
                self.absorb_sample(now.saturating_sub(e.sent_at));
            }
        }
    }

    fn absorb_sample(&mut self, rtt_ns: u64) {
        self.samples += 1;
        match self.srtt_ns {
            None => {
                // First sample: SRTT = R, RTTVAR = R/2 (RFC 6298 §2.2).
                self.srtt_ns = Some(rtt_ns);
                self.rttvar_ns = rtt_ns / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|; SRTT = 7/8·SRTT + 1/8·R.
                let err = srtt.abs_diff(rtt_ns);
                self.rttvar_ns = (3 * self.rttvar_ns + err) / 4;
                self.srtt_ns = Some((7 * srtt + rtt_ns) / 8);
            }
        }
    }

    /// Timer-driven retransmissions a given armed TPDU has absorbed so far.
    pub fn retries_for(&self, start: u64) -> Option<u32> {
        self.entries.get(&start).map(|e| e.retries)
    }

    /// TPDU starts currently armed.
    pub fn armed(&self) -> Vec<u64> {
        self.entries.keys().copied().collect()
    }

    /// Forgets a TPDU entirely (it was shed or abandoned).
    pub fn forget(&mut self, start: u64) {
        self.entries.remove(&start);
    }

    /// The earliest timer expiry, if any TPDU is armed.
    pub fn next_expiry(&self) -> Option<u64> {
        self.entries.values().map(|e| e.expires_at).min()
    }

    /// Pushes every due timer forward by one current RTO *without*
    /// consuming a retry, applying backoff, or marking the entry
    /// retransmitted — the back-pressure deferral. While the peer reports
    /// budget pressure, retransmitting would only feed bytes to the
    /// shedder; deferring keeps the retry budget intact for when the
    /// pressure clears. Returns the deferred starts.
    pub fn defer_due(&mut self, now: u64) -> Vec<u64> {
        let due: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.expires_at <= now)
            .map(|(&s, _)| s)
            .collect();
        for &start in &due {
            let rto = self.backed_off(self.entries[&start].backoff);
            let e = self.entries.get_mut(&start).expect("collected above");
            e.expires_at = now + rto;
        }
        due
    }

    /// Advances the virtual clock and collects every due verdict.
    ///
    /// A [`TimerVerdict::Retransmit`] applies the backoff and re-arms the
    /// timer, so a caller that drops the verdict on the floor will simply
    /// see it again one (longer) RTO later. An exhausted TPDU is disarmed —
    /// the caller decides between shedding and the dead-peer error.
    pub fn poll(&mut self, now: u64) -> Vec<TimerVerdict> {
        let due: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.expires_at <= now)
            .map(|(&s, _)| s)
            .collect();
        let mut verdicts = Vec::with_capacity(due.len());
        for start in due {
            let snap = self.entries[&start];
            if snap.retries >= self.cfg.max_retries {
                self.entries.remove(&start);
                verdicts.push(TimerVerdict::Exhausted {
                    start,
                    retries: snap.retries,
                    elapsed_ns: now.saturating_sub(snap.first_sent_at),
                });
                continue;
            }
            self.fires += 1;
            let rto = self.backed_off(snap.backoff + 1);
            let e = self.entries.get_mut(&start).expect("collected above");
            e.retries += 1;
            e.backoff += 1;
            e.retransmitted = true;
            e.sent_at = now;
            e.expires_at = now + rto;
            verdicts.push(TimerVerdict::Retransmit(start));
        }
        verdicts
    }
}

/// `u64::checked_shl` that saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> Self {
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer() -> RetransmitTimer {
        RetransmitTimer::new(RtoConfig {
            initial_rto_ns: 1000,
            min_rto_ns: 100,
            max_rto_ns: 16_000,
            max_retries: 3,
            policy: DegradePolicy::Abort,
        })
    }

    #[test]
    fn initial_rto_until_first_sample() {
        let t = timer();
        assert_eq!(t.base_rto_ns(), 1000);
    }

    #[test]
    fn jacobson_estimator_tracks_samples() {
        let mut t = timer();
        t.on_send(0, 0, false);
        t.on_ack(0, 400); // first sample: SRTT=400, RTTVAR=200
        assert_eq!(t.base_rto_ns(), 400 + 4 * 200);
        t.on_send(8, 1000, false);
        t.on_ack(8, 1400); // identical sample: variance decays
        assert!(t.base_rto_ns() < 1200);
        assert_eq!(t.samples, 2);
    }

    #[test]
    fn karn_rule_discards_retransmitted_samples() {
        let mut t = timer();
        t.on_send(0, 0, false);
        t.poll(1000); // fires, marks retransmitted
        t.on_ack(0, 30_000); // wild RTT must NOT poison the estimator
        assert_eq!(t.samples, 0);
        assert_eq!(t.base_rto_ns(), 1000, "still the initial RTO");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut t = timer();
        t.on_send(0, 0, false);
        assert_eq!(t.rto_for(0), Some(1000));
        assert_eq!(t.poll(1000), vec![TimerVerdict::Retransmit(0)]);
        assert_eq!(t.rto_for(0), Some(2000));
        t.poll(3000);
        assert_eq!(t.rto_for(0), Some(4000));
        t.poll(7000);
        assert_eq!(t.rto_for(0), Some(8000));
        // Budget (3) empties on the next fire.
        let v = t.poll(15_000);
        assert!(matches!(
            v[0],
            TimerVerdict::Exhausted {
                start: 0,
                retries: 3,
                ..
            }
        ));
        assert!(t.armed().is_empty(), "exhausted TPDU is disarmed");
    }

    #[test]
    fn timer_not_due_stays_silent() {
        let mut t = timer();
        t.on_send(0, 0, false);
        assert!(t.poll(999).is_empty());
        assert_eq!(t.next_expiry(), Some(1000));
    }

    #[test]
    fn ack_disarms_and_forget_drops() {
        let mut t = timer();
        t.on_send(0, 0, false);
        t.on_send(8, 0, false);
        t.on_ack(0, 500);
        t.forget(8);
        assert!(t.armed().is_empty());
        assert!(t.poll(10_000).is_empty());
    }

    #[test]
    fn error_display_is_informative() {
        let e = TransportError::PeerUnreachable {
            conn_id: 7,
            tpdu_start: 64,
            retries: 8,
            elapsed_ns: 123,
        };
        assert!(e.to_string().contains("peer unreachable"));
        assert!(e.to_string().contains("8 retransmissions"));
        let c: TransportError = CoreError::Truncated.into();
        assert!(c.to_string().contains("truncated"));
        let b = TransportError::BudgetExhausted {
            conn_id: 3,
            shed_bytes: 4096,
            evictions: 2,
            held_bytes: 512,
        };
        assert!(b.to_string().contains("budget exhausted"));
        assert!(b.to_string().contains("4096 bytes"));
    }

    #[test]
    fn defer_due_postpones_without_consuming_retries() {
        let mut t = timer();
        t.on_send(0, 0, false);
        // Fire once for real: one retry consumed, backoff applied.
        assert_eq!(t.poll(1000), vec![TimerVerdict::Retransmit(0)]);
        assert_eq!(t.retries_for(0), Some(1));
        assert_eq!(t.rto_for(0), Some(2000));
        // Deferral at the next expiry: pushed forward by the *current* RTO,
        // retries and backoff untouched.
        assert_eq!(t.defer_due(3000), vec![0]);
        assert_eq!(t.retries_for(0), Some(1));
        assert_eq!(t.rto_for(0), Some(2000), "no extra backoff");
        assert!(t.poll(3001).is_empty(), "entry re-armed into the future");
        assert_eq!(t.next_expiry(), Some(5000));
        // Not-yet-due entries are left alone.
        assert!(t.defer_due(4000).is_empty());
    }
}
