//! The receiving side: immediate processing, reordering, or physical
//! reassembly (§3.3), over one shared verification engine.
//!
//! The receiver identifies the TPDU a chunk belongs to by its *position in
//! connection space*: `C.SN − T.SN` names the TPDU's first element, and is
//! invariant under fragmentation (it is exactly the implicit `T.ID` of
//! Appendix A). The explicit `T.ID` is therefore pure protected data — its
//! corruption surfaces as an error-detection-code mismatch, matching
//! Table 1. `C.SN` corruption moves a chunk into the *wrong* TPDU group,
//! where it collides with data owned by another group — the cross-group
//! consistency check. `T.SN` corruption breaks virtual reassembly.
//!
//! Every arriving byte is counted as a *data touch* when it is written
//! anywhere (application space or a staging buffer), so the three delivery
//! modes make the paper's §3.3 claim quantitative: immediate processing
//! touches each byte once; physical reassembly touches it twice; reordering
//! falls in between, depending on how much disorder the network produced.
//!
//! Per-group error detection runs through the streaming verification path:
//! each group's [`TpduInvariant`] absorbs chunk payloads via
//! `chunks_wsc::Wsc2Stream`, whose cached cursor weight makes contiguous
//! element runs — the common case even under heavy fragmentation — cost one
//! table multiply per run instead of an `alpha^position` exponentiation per
//! element (see docs/ARCHITECTURE.md, "The hot path").

use std::collections::HashMap;
use std::sync::Arc;

use chunks_core::chunk::Chunk;
use chunks_core::label::ChunkType;
use chunks_core::packet::{spans, unpack, unpack_observed, validate, Packet};
use chunks_core::wire::decode_chunk_at;
use chunks_obs::{Event, HotCounter, Labels, ObsSink, SpanId, Stage};
use chunks_vreasm::{OverlapPolicy, PduTracker, Reassembly, Resolution, TrackEvent};
use chunks_wsc::{InvariantLayout, TpduInvariant};

use crate::ack::AckInfo;
use crate::budget::ResourceBudget;
use crate::conn::{ConnectionParams, Signal};
use crate::rto::TransportError;

/// The three receiver strategies of §3.3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeliveryMode {
    /// Process chunks as they arrive: place data straight into the
    /// application address space ("reassembly in place"). One touch per
    /// byte; no reassembly buffer at all.
    Immediate,
    /// Deliver data to the application strictly in connection-sequence
    /// order, buffering out-of-order chunks until the gap fills.
    Reorder,
    /// Physically reassemble each TPDU and verify it before any byte
    /// reaches the application. Two touches per byte, always.
    Reassemble,
}

/// Why a TPDU was rejected — the detection channels of Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureReason {
    /// The recomputed WSC-2 invariant did not match the received ED chunk.
    EdMismatch,
    /// A cross-field consistency check failed (`C.SN − T.SN` collision
    /// across groups, or `C.SN − X.SN` not constant within an external
    /// PDU).
    Consistency,
    /// Virtual reassembly failed: overlap, data past the stop bit,
    /// conflicting stop positions, or the TPDU never completed.
    ReassemblyError,
    /// The chunk itself was malformed (wire decode failed, wrong element
    /// size for the connection).
    BadChunk,
    /// A fragment overlapped already-held positions with *differing* bytes
    /// and [`OverlapPolicy::Reject`] condemned the group rather than pick
    /// a winner.
    OverlapConflict,
}

impl FailureReason {
    /// A short stable kebab-case tag, used as the `reason` of a
    /// [`Event::ChunkRejected`] trace event.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureReason::EdMismatch => "ed-mismatch",
            FailureReason::Consistency => "consistency",
            FailureReason::ReassemblyError => "reassembly-error",
            FailureReason::BadChunk => "bad-chunk",
            FailureReason::OverlapConflict => "overlap-conflict",
        }
    }
}

/// Events surfaced to the caller.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RxEvent {
    /// A TPDU passed verification; its data is (or already was, in
    /// immediate mode) in the application space.
    TpduDelivered {
        /// Connection-space index of the TPDU's first element.
        start: u64,
        /// Elements delivered.
        elements: u64,
    },
    /// A TPDU was rejected.
    TpduFailed {
        /// Connection-space index of the TPDU's first element.
        start: u64,
        /// The detection channel that caught it.
        reason: FailureReason,
    },
    /// A connection signal arrived.
    Signalled(Signal),
    /// An acknowledgment arrived (for the data we sent the other way).
    Acked(AckInfo),
    /// The connection was closed by the `C.ST` bit.
    ConnectionClosed,
    /// The resource budget was exhausted and the chunk was dropped before
    /// it touched any verification state — the typed shed of graceful
    /// degradation. The retransmission path will offer the data again.
    ChunkShed {
        /// Connection-space index of the TPDU the chunk belonged to.
        start: u64,
        /// Payload bytes shed.
        bytes: u64,
    },
}

/// Receiver statistics — the quantities the paper's performance argument
/// turns on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RxStats {
    /// Bytes written anywhere (application space or staging buffers).
    pub data_touches: u64,
    /// Bytes currently staged in reorder/reassembly buffers.
    pub buffered_bytes: u64,
    /// High-water mark of staged bytes.
    pub peak_buffered_bytes: u64,
    /// Duplicate chunks rejected before processing.
    pub duplicate_chunks: u64,
    /// Chunks accepted.
    pub chunks_accepted: u64,
    /// TPDUs delivered.
    pub tpdus_delivered: u64,
    /// TPDUs rejected.
    pub tpdus_failed: u64,
    /// Malformed packets dropped.
    pub bad_packets: u64,
    /// Sum over delivered elements of (delivery time − arrival time), in
    /// the caller's time unit: the buffering latency immediate mode avoids.
    pub holding_delay: u64,
    /// Overlaps whose bytes actually differed from what was already held
    /// (benign retransmission cuts carry identical bytes and do not count).
    pub overlap_conflicts: u64,
    /// Idle incomplete groups evicted under budget pressure.
    pub evictions: u64,
    /// Payload bytes shed because the resource budget was exhausted.
    pub shed_bytes: u64,
}

/// Per-TPDU verification state.
#[derive(Debug)]
struct Group {
    tracker: PduTracker,
    inv: TpduInvariant,
    /// `C.SN − X.SN` per external PDU id (Table 1 consistency check).
    x_deltas: HashMap<u32, u32>,
    ed: Option<[u8; 8]>,
    /// Chunks staged until verification (Reassemble mode only).
    held: Vec<(Chunk, u64)>,
    /// Verification already failed (sticky, reported once).
    failed: Option<FailureReason>,
    reported: bool,
    elements: u64,
    /// Virtual-clock time of the group's most recent arrival — the LRU key
    /// budget eviction orders idle groups by.
    last_touch: u64,
}

/// Compact record of a delivered TPDU. On delivery the heavyweight [`Group`]
/// (interval slab, X-delta table, staging `Vec`) moves to the receiver's
/// pool for reuse by the next TPDU; everything later queries need — the
/// verified code, the digest, the element count, and the known end for
/// duplicate classification — survives here, heap-free.
#[derive(Clone, Debug)]
struct Done {
    elements: u64,
    /// One past the last `T.SN`-space element (the tracker's known end),
    /// used to classify late retransmissions exactly as the full tracker
    /// would have.
    end: u64,
    code: chunks_wsc::Wsc2,
    digest: [u8; 8],
}

/// The chunk receiver for one connection.
#[derive(Debug)]
pub struct Receiver {
    mode: DeliveryMode,
    params: ConnectionParams,
    layout: InvariantLayout,
    /// Application address space; element `i` (connection-space) lives at
    /// bytes `[i*size, (i+1)*size)`.
    app: Vec<u8>,
    /// Which connection-space elements have been claimed, tagged by the
    /// owning group's start — so a cross-group collision can name the
    /// owner and the exact contested byte range in its diagnostic.
    claimed: Reassembly,
    /// How differing-byte overlaps within a group are resolved.
    policy: OverlapPolicy,
    /// Caps on held bytes, open groups and tracked fragments (unlimited by
    /// default).
    budget: ResourceBudget,
    /// Delivery cursor for Reorder mode (elements below are with the app).
    in_order: u64,
    /// Out-of-order staging for Reorder mode: element index → (chunk, when).
    reorder_q: HashMap<u64, (Chunk, u64)>,
    /// Open and failed groups only; delivered groups collapse into `done`.
    groups: HashMap<u64, Group>,
    /// Delivered TPDUs, keyed by start: the compact remainder of a group
    /// after its heavy state returned to `pool`.
    done: HashMap<u64, Done>,
    /// Recycled group shells (cleared trackers with warm interval slabs,
    /// cleared X-delta tables, empty staging `Vec`s with their capacity).
    /// Fed by delivery, eviction, and group reset; drained by
    /// [`Self::group_entry`] — in steady state a new TPDU opens without
    /// touching the allocator.
    pool: Vec<Group>,
    /// Verified-and-delivered TPDU starts (drives acks).
    delivered: Vec<u64>,
    closed: bool,
    /// Differential-test oracle: when set, `handle_packet` decodes through
    /// the pre-refactor owned path (`unpack`, one payload copy per chunk)
    /// instead of the zero-copy span walk. Behaviour must be identical —
    /// `tests/parallel_differential.rs` replays every scenario both ways.
    legacy_owned: bool,
    /// Accumulated statistics.
    pub stats: RxStats,
    /// Observability sink; [`chunks_obs::NullSink`] unless
    /// [`with_obs`](Self::with_obs) installed a recording one.
    obs: Arc<dyn ObsSink>,
    /// Cached `obs.enabled()`: the disabled hot path is this one branch.
    obs_on: bool,
    /// Cached `obs.enabled() && obs.verbose()`: gates the *expensive*
    /// instrumentation (observed decode with its payload copies, per-chunk
    /// events) that the always-on production sink refuses so the obs-on hot
    /// path stays allocation-free.
    obs_verbose: bool,
    /// Last virtual-clock time seen by `handle_chunk`/`handle_packet`;
    /// stamps trace events emitted from call paths without a `now`.
    last_now: u64,
    /// Pre-resolved handles for the per-chunk/per-TPDU counters, bound to
    /// the sink's shard block at [`set_obs`](Self::set_obs) so the hot path
    /// never repeats the label→cell lookup.
    hot: HotRxCounters,
}

/// The receive path's pre-resolved counter handles (see
/// [`chunks_obs::HotCounter`]): one label→cell resolution at `set_obs`,
/// plain owner-writes stores per update.
#[derive(Debug, Clone)]
struct HotRxCounters {
    chunks_accepted: HotCounter,
    tracker_accepts: HotCounter,
    data_touches: HotCounter,
    tpdus_delivered: HotCounter,
    verify_pass: HotCounter,
}

impl HotRxCounters {
    fn unresolved() -> Self {
        HotRxCounters {
            chunks_accepted: HotCounter::unresolved("transport.rx.chunks_accepted"),
            tracker_accepts: HotCounter::unresolved("vreasm.tracker.accepts"),
            data_touches: HotCounter::unresolved("transport.rx.data_touches"),
            tpdus_delivered: HotCounter::unresolved("transport.rx.tpdus_delivered"),
            verify_pass: HotCounter::unresolved("wsc.verify_pass"),
        }
    }

    fn resolve(sink: &dyn ObsSink) -> Self {
        HotRxCounters {
            chunks_accepted: sink.hot_counter("transport.rx.chunks_accepted"),
            tracker_accepts: sink.hot_counter("vreasm.tracker.accepts"),
            data_touches: sink.hot_counter("transport.rx.data_touches"),
            tpdus_delivered: sink.hot_counter("transport.rx.tpdus_delivered"),
            verify_pass: sink.hot_counter("wsc.verify_pass"),
        }
    }
}

impl Receiver {
    /// Creates a receiver for a connection, able to hold `capacity_elements`
    /// of application data.
    pub fn new(
        mode: DeliveryMode,
        params: ConnectionParams,
        layout: InvariantLayout,
        capacity_elements: u64,
    ) -> Self {
        Receiver {
            mode,
            params,
            layout,
            app: vec![0; capacity_elements as usize * params.elem_size as usize],
            claimed: Reassembly::new(OverlapPolicy::default()),
            policy: OverlapPolicy::default(),
            budget: ResourceBudget::default(),
            in_order: 0,
            reorder_q: HashMap::new(),
            groups: HashMap::new(),
            done: HashMap::new(),
            pool: Vec::new(),
            delivered: Vec::new(),
            closed: false,
            legacy_owned: false,
            stats: RxStats::default(),
            obs: chunks_obs::null(),
            obs_on: false,
            obs_verbose: false,
            last_now: 0,
            hot: HotRxCounters::unresolved(),
        }
    }

    /// Installs an observability sink (builder form). With the default
    /// [`chunks_obs::NullSink`] every instrumentation site reduces to one
    /// branch on a cached bool.
    pub fn with_obs(mut self, sink: Arc<dyn ObsSink>) -> Self {
        self.set_obs(sink);
        self
    }

    /// Installs an observability sink in place.
    pub fn set_obs(&mut self, sink: Arc<dyn ObsSink>) {
        self.obs_on = sink.enabled();
        self.obs_verbose = self.obs_on && sink.verbose();
        self.hot = HotRxCounters::resolve(&*sink);
        self.obs = sink;
    }

    /// Sets the overlap policy (builder form).
    pub fn with_policy(mut self, policy: OverlapPolicy) -> Self {
        self.set_policy(policy);
        self
    }

    /// Sets the overlap policy in place.
    pub fn set_policy(&mut self, policy: OverlapPolicy) {
        self.policy = policy;
    }

    /// The configured overlap policy.
    pub fn policy(&self) -> OverlapPolicy {
        self.policy
    }

    /// Installs a resource budget (builder form).
    pub fn with_budget(mut self, budget: ResourceBudget) -> Self {
        self.set_budget(budget);
        self
    }

    /// Installs a resource budget in place.
    pub fn set_budget(&mut self, budget: ResourceBudget) {
        self.budget = budget;
    }

    /// The configured resource budget.
    pub fn budget(&self) -> &ResourceBudget {
        &self.budget
    }

    /// The delivery mode.
    pub fn mode(&self) -> DeliveryMode {
        self.mode
    }

    /// Routes `handle_packet` through the pre-refactor owned decode path
    /// (builder form). This is the differential-test oracle: identical
    /// events, stats, and delivered bytes are required of both paths.
    pub fn with_legacy_owned(mut self, on: bool) -> Self {
        self.set_legacy_owned(on);
        self
    }

    /// See [`Self::with_legacy_owned`].
    pub fn set_legacy_owned(&mut self, on: bool) {
        self.legacy_owned = on;
    }

    /// Pre-sizes every growth point on the receive path for `tpdus` more
    /// TPDUs fragmenting into at most `fragments` disjoint runs, so a
    /// steady-state window stays allocation-free (amortised `Vec`/map
    /// doubling alone cannot promise a zero-allocation *window* — an
    /// explicit reserve can). `tests/hotpath_allocs.rs` pins this.
    pub fn reserve(&mut self, tpdus: usize, fragments: usize) {
        self.groups.reserve(tpdus);
        self.done.reserve(tpdus);
        self.delivered.reserve(tpdus);
        self.claimed.reserve(fragments);
        self.reorder_q.reserve(fragments);
        self.pool.reserve(tpdus);
    }

    /// The application address space (element `i` at `i * elem_size`).
    pub fn app_data(&self) -> &[u8] {
        &self.app
    }

    /// Contiguously verified prefix, in elements.
    pub fn verified_prefix(&self) -> u64 {
        let mut starts: Vec<(u64, u64)> = self
            .delivered
            .iter()
            .map(|&s| {
                let elements = self.done.get(&s).map(|d| d.elements).unwrap_or_default();
                (s, elements)
            })
            .collect();
        starts.sort_unstable();
        let mut cursor = 0;
        for (s, n) in starts {
            if s > cursor {
                break;
            }
            cursor = cursor.max(s + n);
        }
        cursor
    }

    /// True once the `C.ST` bit has been seen on verified data.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Unwraps a `C.SN` to a connection-space element index.
    fn unwrap_csn(&self, c_sn: u32) -> u64 {
        c_sn.wrapping_sub(self.params.initial_csn) as u64
    }

    /// Group-level span labels: the TPDU is identified by its start, so the
    /// `verify` and `deliver` spans key on `(C.ID, start, 0)`.
    fn group_labels(&self, start: u64) -> Labels {
        Labels::new(self.params.conn_id, start as u32, 0)
    }

    /// Chunk-level span labels, straight off the header.
    fn chunk_labels(chunk: &Chunk) -> Labels {
        Labels::new(
            chunk.header.conn.id,
            chunk.header.tpdu.sn,
            chunk.header.ext.sn,
        )
    }

    /// Fetches or creates the group at `start`. A group's first arrival —
    /// data, ED, or the failure that condemns it — opens its `verify` span;
    /// the span closes at the WSC-2 verdict (delivery or failure).
    fn group_entry(&mut self, start: u64, now: u64) -> &mut Group {
        if !self.groups.contains_key(&start) {
            if self.obs_on {
                self.obs
                    .span_open(now, SpanId::new(self.group_labels(start), Stage::Verify));
            }
            let group = match self.pool.pop() {
                Some(g) => g,
                None => Group {
                    tracker: PduTracker::new(),
                    inv: TpduInvariant::new(self.layout).expect("layout validated at framer"),
                    x_deltas: HashMap::new(),
                    ed: None,
                    held: Vec::new(),
                    failed: None,
                    reported: false,
                    elements: 0,
                    last_touch: now,
                },
            };
            self.groups.insert(start, group);
        }
        let group = self.groups.get_mut(&start).expect("just ensured");
        group.last_touch = now;
        group
    }

    /// Returns a retired group's shell to the pool: every container is
    /// cleared but keeps its capacity (the tracker's interval slab recycles
    /// its nodes), so [`Self::group_entry`] can re-arm it for the next TPDU
    /// without allocating.
    fn recycle_group(&mut self, mut g: Group) {
        g.tracker.clear();
        g.inv.reset();
        g.x_deltas.clear();
        g.held.clear();
        g.ed = None;
        g.failed = None;
        g.reported = false;
        g.elements = 0;
        self.pool.push(g);
    }

    /// Handles one arriving packet at time `now`.
    pub fn handle_packet(&mut self, packet: &Packet, now: u64) -> Vec<RxEvent> {
        let mut events = Vec::new();
        self.handle_packet_into(packet, now, &mut events);
        events
    }

    /// [`Self::handle_packet`], appending events into a caller-owned buffer
    /// — the allocation-free form the hot path uses.
    pub fn handle_packet_into(&mut self, packet: &Packet, now: u64, out: &mut Vec<RxEvent>) {
        self.last_now = now;
        self.packet_inner(packet, now, out);
    }

    /// Handles a batch of packets arriving at the same virtual time. The
    /// per-call bookkeeping — the `now` stamp, the decode-path selection,
    /// the caller's event buffer — is paid once per batch instead of once
    /// per packet, and the deferred WSC folds inside each group's
    /// `Wsc2Stream` amortise across the whole batch of absorbed chunks.
    pub fn ingest_batch(&mut self, packets: &[Packet], now: u64, out: &mut Vec<RxEvent>) {
        self.last_now = now;
        for packet in packets {
            self.packet_inner(packet, now, out);
        }
    }

    fn packet_inner(&mut self, packet: &Packet, now: u64, out: &mut Vec<RxEvent>) {
        if self.obs_verbose || self.legacy_owned {
            // Observed decode keeps per-chunk trace events in wire order
            // (verbose sinks only — it copies each payload); the
            // legacy-owned oracle keeps the pre-refactor copying decode.
            let parsed = if self.obs_verbose {
                unpack_observed(packet, now, &*self.obs)
            } else {
                unpack(packet)
            };
            match parsed {
                Ok(chunks) => {
                    for chunk in chunks {
                        self.chunk_inner(chunk, now, out);
                    }
                }
                Err(_) => {
                    self.stats.bad_packets += 1;
                    if self.obs_on {
                        self.obs.counter("transport.rx.bad_packets", 1);
                    }
                }
            }
            return;
        }
        // Zero-copy hot path: one allocation-free validation scan preserves
        // `unpack`'s whole-packet reject semantics, then each chunk decodes
        // in place with its payload borrowing the packet's `Bytes`.
        if validate(packet).is_err() {
            self.stats.bad_packets += 1;
            if self.obs_on {
                self.obs.counter("transport.rx.bad_packets", 1);
            }
            return;
        }
        for (at, _) in spans(packet) {
            let Ok((chunk, _)) = decode_chunk_at(&packet.bytes, at) else {
                debug_assert!(false, "validated packet must decode");
                continue;
            };
            self.chunk_inner(chunk, now, out);
        }
    }

    /// Handles one chunk at time `now`.
    pub fn handle_chunk(&mut self, chunk: Chunk, now: u64) -> Vec<RxEvent> {
        let mut events = Vec::new();
        self.handle_chunk_into(chunk, now, &mut events);
        events
    }

    /// [`Self::handle_chunk`], appending events into a caller-owned buffer.
    pub fn handle_chunk_into(&mut self, chunk: Chunk, now: u64, out: &mut Vec<RxEvent>) {
        self.last_now = now;
        self.chunk_inner(chunk, now, out);
    }

    fn chunk_inner(&mut self, chunk: Chunk, now: u64, out: &mut Vec<RxEvent>) {
        match chunk.header.ty {
            ChunkType::Data => self.handle_data(chunk, now, out),
            ChunkType::ErrorDetection => self.handle_ed(chunk, now, out),
            ChunkType::Signal => match Signal::from_chunk(&chunk) {
                Ok(s) => out.push(RxEvent::Signalled(s)),
                Err(_) => {
                    self.stats.bad_packets += 1;
                    if self.obs_on {
                        self.obs.counter("transport.rx.bad_packets", 1);
                    }
                }
            },
            ChunkType::Ack => match AckInfo::from_chunk(&chunk) {
                Ok(a) => out.push(RxEvent::Acked(a)),
                Err(_) => {
                    self.stats.bad_packets += 1;
                    if self.obs_on {
                        self.obs.counter("transport.rx.bad_packets", 1);
                    }
                }
            },
            ChunkType::Padding => {}
        }
    }

    fn handle_data(&mut self, chunk: Chunk, now: u64, out: &mut Vec<RxEvent>) {
        let h = chunk.header;
        // SIZE is signalled per connection; a mismatch is a corrupted SIZE
        // field (Table 1: reassembly error).
        if h.size != self.params.elem_size {
            return self.group_failure_into(
                self.unwrap_csn(h.conn.sn.wrapping_sub(h.tpdu.sn)),
                FailureReason::BadChunk,
                out,
            );
        }
        let start = self.unwrap_csn(h.conn.sn.wrapping_sub(h.tpdu.sn));
        let first = self.unwrap_csn(h.conn.sn);
        let len = h.len as u64;
        let esize = self.params.elem_size as usize;
        if (first + len) as usize * esize > self.app.len() {
            return self.group_failure_into(start, FailureReason::BadChunk, out);
        }

        // Budget admission runs before any group or invariant state mutates,
        // so a shed chunk leaves no trace in the verification state and a
        // clean retransmission can land later.
        if self.budget.is_limited() && self.admit_into(start, first, len, now, out) {
            return;
        }

        // Delivered groups have collapsed into the `done` tier; their heavy
        // state is recycled. Late copies aimed at a delivered TPDU replay the
        // legacy semantics exactly, derived from what the retired group would
        // have answered through its (fully contiguous) tracker.
        let sn = h.tpdu.sn as u64;
        if let Some(done) = self.done.get(&start) {
            let end = done.end;
            if sn >= end {
                // Data entirely past the verified stop: the legacy path went
                // offer → Inconsistent → group_failure, and the reported
                // group swallowed the verdict. Silent, no stats.
                return;
            }
            self.stats.duplicate_chunks += 1;
            if self.obs_on {
                self.obs.counter("transport.rx.duplicate_chunks", 1);
            }
            if sn + len > end && self.budget.is_limited() {
                // A tail past the verified end: the legacy recursion put the
                // extracted sub-chunk back through budget admission before
                // discovering the inconsistency, so shedding behaviour (and
                // its events) must be reproduced here.
                self.admit_into(start, first + (end - sn), len - (end - sn), now, out);
            }
            return;
        }

        let group = self.group_entry(start, now);
        let reported = group.reported;

        // Virtual reassembly within the TPDU. Already-covered positions are
        // resolved *before* the invariant absorbs anything (§3.3). A
        // retransmission cut at different points duplicates received data
        // with *identical* bytes — the benign case of Appendix C, silently
        // trimmed. Overlapping positions whose bytes *differ* are a genuine
        // conflict the overlap policy must resolve; whatever it picks, the
        // WSC-2 invariant (not the policy) remains the integrity authority
        // at delivery time. Fresh sub-spans are extracted and processed,
        // because chunks stay chunks under splitting.
        //
        // The gate is the allocation-free `overlap`; the `uncovered` Vec is
        // built only on this (cold) duplicate path. `len == 0` keeps the
        // legacy outcome for degenerate empty chunks, whose uncovered set
        // `[]` never equalled the full span.
        if len == 0 || group.tracker.overlap(sn, len) > 0 {
            let uncovered = group.tracker.uncovered(sn, len);
            self.stats.duplicate_chunks += 1;
            if self.obs_on {
                self.obs.counter("transport.rx.duplicate_chunks", 1);
            }
            // Complement of the uncovered runs: the overlapped positions.
            let mut overlaps: Vec<(u64, u64)> = Vec::new();
            let mut cursor = sn;
            for &(lo, hi) in &uncovered {
                if lo > cursor {
                    overlaps.push((cursor, lo));
                }
                cursor = hi;
            }
            if cursor < sn + len {
                overlaps.push((cursor, sn + len));
            }
            // A delivered (or condemned) group keeps its bytes no matter
            // the policy: its verdict is already out.
            if !reported && self.resolve_overlaps_into(&chunk, start, &overlaps, now, out) {
                return;
            }
            for (lo, hi) in uncovered {
                let offset = (lo - sn) as u32;
                let sublen = (hi - lo) as u32;
                match chunks_core::frag::extract(&chunk, offset, sublen) {
                    Ok(piece) => self.handle_data(piece, now, out),
                    Err(_) => self.group_failure_into(start, FailureReason::BadChunk, out),
                }
            }
            return;
        }
        let group = self.groups.get_mut(&start).expect("present");
        match group.tracker.offer(sn, len, h.tpdu.st) {
            TrackEvent::Duplicate => {
                self.stats.duplicate_chunks += 1;
                if self.obs_on {
                    self.obs.counter("transport.rx.duplicate_chunks", 1);
                }
                return;
            }
            TrackEvent::Inconsistent => {
                return self.group_failure_into(start, FailureReason::ReassemblyError, out);
            }
            TrackEvent::Accepted => {}
        }

        // Cross-group collision: these elements already belong to another
        // TPDU's data — a corrupted C.SN moved this chunk (Table 1:
        // consistency check). The overlap policy does not soften this
        // channel: the colliding *identity* is itself the corruption, so
        // every policy condemns; the diagnostic names the owning group and
        // the exact contested byte range instead of discarding silently.
        // The clean (overwhelmingly common) case is decided by the
        // allocation-free `overlap` probe; only a contested span pays for
        // the conflict-describing `Claim`.
        if self.claimed.overlap(first, first + len) > 0 {
            let probe = self.claimed.probe(first, first + len);
            if !probe.is_clean() {
                self.stats.overlap_conflicts += probe.conflicts.len() as u64;
                if self.obs_on {
                    self.obs.counter(
                        "transport.rx.overlap_conflicts",
                        probe.conflicts.len() as u64,
                    );
                    for c in &probe.conflicts {
                        self.obs.event(
                            now,
                            Event::OverlapConflict {
                                labels: Self::chunk_labels(&chunk),
                                policy: self.policy.as_str(),
                                start: (c.start * esize as u64) as u32,
                                bytes: (c.len() * esize as u64) as u32,
                                owner: c.tag as u32,
                            },
                        );
                    }
                }
                return self.group_failure_into(start, FailureReason::Consistency, out);
            }
            self.claimed.claim(first, first + len, start);
        } else {
            self.claimed.claim_uncontested(first, first + len, start);
        }

        let group = self.groups.get_mut(&start).expect("just inserted");
        // X-level consistency: C.SN − X.SN constant per external PDU.
        let x_delta = h.conn.sn.wrapping_sub(h.ext.sn);
        match group.x_deltas.get(&h.ext.id) {
            Some(&d) if d != x_delta => {
                return self.group_failure_into(start, FailureReason::Consistency, out);
            }
            Some(_) => {}
            None => {
                group.x_deltas.insert(h.ext.id, x_delta);
            }
        }

        // Incremental end-to-end error detection.
        if let Err(e) = group.inv.absorb_chunk(&h, &chunk.payload) {
            let reason = match e {
                chunks_wsc::InvariantError::IdMismatch => FailureReason::EdMismatch,
                _ => FailureReason::BadChunk,
            };
            return self.group_failure_into(start, reason, out);
        }
        group.elements += len;
        self.stats.chunks_accepted += 1;
        if self.obs_on {
            self.hot.chunks_accepted.add(&*self.obs, 1);
            self.hot.tracker_accepts.add(&*self.obs, 1);
            // Tracker occupancy is a per-chunk histogram — diagnostics
            // detail, not a health signal, so it rides the verbose tier
            // (the always-on surface reads fragment state at barriers).
            if self.obs_verbose {
                self.obs
                    .observe("vreasm.tracker.fragments", group.tracker.fragments() as u64);
            }
        }
        if h.conn.st {
            self.closed = true;
        }

        // Mode-specific data movement.
        match self.mode {
            DeliveryMode::Immediate => {
                self.place(first, &chunk.payload);
            }
            DeliveryMode::Reorder => {
                if first == self.in_order {
                    self.place(first, &chunk.payload);
                    self.in_order = first + len;
                    self.drain_reorder_queue(now);
                } else {
                    self.stage(chunk.payload.len() as u64);
                    self.stats.data_touches += chunk.payload.len() as u64;
                    if self.obs_on {
                        self.obs
                            .span_open(now, SpanId::new(Self::chunk_labels(&chunk), Stage::Hold));
                    }
                    self.reorder_q.insert(first, (chunk.clone(), now));
                }
            }
            DeliveryMode::Reassemble => {
                self.stage(chunk.payload.len() as u64);
                self.stats.data_touches += chunk.payload.len() as u64;
                if self.obs_on {
                    self.obs
                        .span_open(now, SpanId::new(Self::chunk_labels(&chunk), Stage::Hold));
                }
                let group = self.groups.get_mut(&start).expect("present");
                group.held.push((chunk.clone(), now));
            }
        }
        if self.obs_on && self.budget.is_limited() {
            self.obs
                .observe("transport.budget.held_bytes", self.stats.buffered_bytes);
        }

        self.try_complete_into(start, now, out)
    }

    /// Budget admission for an arriving data chunk: evict idle groups to
    /// make room, and shed the chunk (typed, counted, traced) when nothing
    /// is evictable. Returns `true` when the chunk was shed (the shed event
    /// has been appended to `out`).
    fn admit_into(
        &mut self,
        start: u64,
        first: u64,
        len: u64,
        now: u64,
        out: &mut Vec<RxEvent>,
    ) -> bool {
        let bytes = len * self.params.elem_size as u64;
        if !self.groups.contains_key(&start) && !self.done.contains_key(&start) {
            while self.open_groups() >= self.budget.max_open_groups {
                if !self.evict_idle(start, "groups", now) {
                    self.shed_into(start, bytes, out);
                    return true;
                }
            }
        }
        // Interval-table occupancy: the hardware analogue caps tracked runs.
        while self.claimed.fragments() >= self.budget.max_fragments {
            if !self.evict_idle(start, "fragments", now) {
                self.shed_into(start, bytes, out);
                return true;
            }
        }
        // Byte caps bind only when this arrival would actually stage.
        let will_stage = match self.mode {
            DeliveryMode::Immediate => false,
            DeliveryMode::Reorder => first != self.in_order,
            DeliveryMode::Reassemble => true,
        };
        if will_stage {
            while self.budget.bytes_exceeded(self.stats.buffered_bytes, bytes) {
                if !self.evict_idle(start, "bytes", now) {
                    self.shed_into(start, bytes, out);
                    return true;
                }
            }
        }
        false
    }

    /// Groups that have arrived but reached no verdict yet.
    fn open_groups(&self) -> usize {
        self.groups.values().filter(|g| !g.reported).count()
    }

    /// Evicts the least-recently-touched idle group — unreported,
    /// incomplete, and not the group the arriving chunk needs (`keep`).
    /// LRU by virtual clock, start as the deterministic tie-break. Its
    /// `verify` span stays open: an eviction is a verdictless drop, and the
    /// trace shows it as one. Returns false when nothing is evictable.
    fn evict_idle(&mut self, keep: u64, cause: &'static str, now: u64) -> bool {
        let victim = self
            .groups
            .iter()
            .filter(|(&s, g)| {
                s != keep && !g.reported && !(g.tracker.is_complete() && g.ed.is_some())
            })
            .min_by_key(|(&s, g)| (g.last_touch, s))
            .map(|(&s, _)| s);
        let Some(s) = victim else {
            return false;
        };
        let g = self.groups.remove(&s).expect("chosen from the map");
        let span = g.elements.max(g.tracker.covered());
        self.claimed.release(s);
        let mut freed: u64 = g.held.iter().map(|(c, _)| c.payload.len() as u64).sum();
        // Reorder-mode staging is keyed by element, not by group; free any
        // staged chunks inside the evicted span too.
        let keys: Vec<u64> = self
            .reorder_q
            .keys()
            .copied()
            .filter(|&f| f >= s && f < s + span)
            .collect();
        for k in keys {
            if let Some((chunk, _)) = self.reorder_q.remove(&k) {
                freed += chunk.payload.len() as u64;
            }
        }
        self.unstage(freed);
        self.stats.evictions += 1;
        if self.obs_on {
            self.obs.counter("transport.budget.evictions", 1);
            self.obs.event(
                now,
                Event::GroupEvicted {
                    conn_id: self.params.conn_id,
                    start: s as u32,
                    bytes: freed as u32,
                    cause,
                },
            );
        }
        self.recycle_group(g);
        true
    }

    /// Drops an arriving chunk under exhausted budget.
    fn shed_into(&mut self, start: u64, bytes: u64, out: &mut Vec<RxEvent>) {
        self.stats.shed_bytes += bytes;
        if self.obs_on {
            self.obs.counter("transport.budget.shed_bytes", bytes);
            self.obs
                .degraded(self.last_now, "budget-exhausted", self.params.conn_id);
        }
        out.push(RxEvent::ChunkShed { start, bytes });
    }

    /// Resolves differing-byte overlaps between an arriving chunk and data
    /// the group already holds, per the configured policy. `overlaps` is in
    /// `T.SN` space. Returns `true` when the policy condemns the group
    /// ([`OverlapPolicy::Reject`]); the failure events are appended to
    /// `out`.
    fn resolve_overlaps_into(
        &mut self,
        chunk: &Chunk,
        start: u64,
        overlaps: &[(u64, u64)],
        now: u64,
        out: &mut Vec<RxEvent>,
    ) -> bool {
        let esize = self.params.elem_size as usize;
        let sn = chunk.header.tpdu.sn as u64;
        let mut condemn = false;
        for &(lo, hi) in overlaps {
            let new = &chunk.payload[(lo - sn) as usize * esize..(hi - sn) as usize * esize];
            let old = self.held_bytes(start, start + lo, start + hi);
            let differs = match &old {
                Some(o) => o.as_slice() != new,
                None => true,
            };
            if !differs {
                continue; // benign retransmission cut (Appendix C)
            }
            self.stats.overlap_conflicts += 1;
            if self.obs_on {
                self.obs.counter("transport.rx.overlap_conflicts", 1);
                self.obs.event(
                    now,
                    Event::OverlapConflict {
                        labels: Self::chunk_labels(chunk),
                        policy: self.policy.as_str(),
                        start: ((start + lo) * esize as u64) as u32,
                        bytes: ((hi - lo) * esize as u64) as u32,
                        owner: start as u32,
                    },
                );
            }
            match self.policy.resolve(true) {
                Resolution::Fail => condemn = true,
                Resolution::Duplicate | Resolution::KeepHeld => {}
                Resolution::Overwrite => match old {
                    Some(o) => self.overwrite_held(start, start + lo, start + hi, &o, new),
                    // Bytes we cannot read back we cannot patch out of the
                    // invariant either — condemn rather than corrupt it.
                    None => condemn = true,
                },
            }
        }
        if condemn {
            self.group_failure_into(start, FailureReason::OverlapConflict, out);
        }
        condemn
    }

    /// Best-effort read-back of the bytes currently held for elements
    /// `[lo, hi)` (connection space) of the group at `start`. Returns
    /// `None` when any element cannot be located — the caller treats that
    /// as a conflict.
    fn held_bytes(&self, start: u64, lo: u64, hi: u64) -> Option<Vec<u8>> {
        let esize = self.params.elem_size as usize;
        let mut out = vec![0u8; (hi - lo) as usize * esize];
        let mut have = chunks_vreasm::IntervalSet::new();
        let overlay =
            |out: &mut Vec<u8>, have: &mut chunks_vreasm::IntervalSet, f: u64, payload: &[u8]| {
                let clen = payload.len() as u64 / esize as u64;
                let (s, e) = (f.max(lo), (f + clen).min(hi));
                if s < e {
                    out[(s - lo) as usize * esize..(e - lo) as usize * esize].copy_from_slice(
                        &payload[(s - f) as usize * esize..(e - f) as usize * esize],
                    );
                    have.insert(s, e);
                }
            };
        match self.mode {
            DeliveryMode::Immediate => {
                out.copy_from_slice(&self.app[lo as usize * esize..hi as usize * esize]);
                have.insert(lo, hi);
            }
            DeliveryMode::Reorder => {
                if lo < self.in_order {
                    let e = hi.min(self.in_order);
                    out[..(e - lo) as usize * esize]
                        .copy_from_slice(&self.app[lo as usize * esize..e as usize * esize]);
                    have.insert(lo, e);
                }
                for (&f, (c, _)) in &self.reorder_q {
                    overlay(&mut out, &mut have, f, &c.payload);
                }
            }
            DeliveryMode::Reassemble => {
                let g = self.groups.get(&start)?;
                for (c, _) in &g.held {
                    let f = self.unwrap_csn(c.header.conn.sn);
                    overlay(&mut out, &mut have, f, &c.payload);
                }
            }
        }
        (have.covered() == hi - lo).then_some(out)
    }

    /// [`OverlapPolicy::LastWins`]: substitutes `new` for the held bytes at
    /// elements `[lo, hi)` (connection space) and patches the group
    /// invariant in place — WSC-2 is linear over GF(2), so absorbing the
    /// XOR delta at the same positions swaps the data without recomputing
    /// anything. The code keeps describing exactly the bytes held, and the
    /// ED comparison at completion stays the integrity authority.
    fn overwrite_held(&mut self, start: u64, lo: u64, hi: u64, old: &[u8], new: &[u8]) {
        let esize = self.params.elem_size as usize;
        if let Some(g) = self.groups.get_mut(&start) {
            g.inv
                .patch_elements(self.params.elem_size, lo - start, old, new);
        }
        match self.mode {
            DeliveryMode::Immediate => self.place(lo, new),
            DeliveryMode::Reorder => {
                let e = hi.min(self.in_order.max(lo));
                if lo < e {
                    self.place(lo, &new[..(e - lo) as usize * esize]);
                }
                let mut touched = 0;
                for (&f, (c, _)) in self.reorder_q.iter_mut() {
                    touched += overlay_into_chunk(c, f, lo, hi, new, esize);
                }
                self.count_rewrite(touched);
            }
            DeliveryMode::Reassemble => {
                let initial = self.params.initial_csn;
                let mut touched = 0;
                if let Some(g) = self.groups.get_mut(&start) {
                    for (c, _) in g.held.iter_mut() {
                        let f = c.header.conn.sn.wrapping_sub(initial) as u64;
                        touched += overlay_into_chunk(c, f, lo, hi, new, esize);
                    }
                }
                self.count_rewrite(touched);
            }
        }
    }

    /// Counts an in-place rewrite of staged bytes as data touches.
    fn count_rewrite(&mut self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.stats.data_touches += bytes;
        if self.obs_on {
            self.obs.counter("transport.rx.data_touches", bytes);
        }
    }

    fn handle_ed(&mut self, chunk: Chunk, now: u64, out: &mut Vec<RxEvent>) {
        if chunk.payload.len() != 8 {
            self.stats.bad_packets += 1;
            if self.obs_on {
                self.obs.counter("transport.rx.bad_packets", 1);
            }
            return;
        }
        let start = self.unwrap_csn(chunk.header.conn.sn);
        // A delivered group's verdict is out: the legacy path overwrote the
        // dead `ed` field and `try_complete` returned nothing. Silent.
        if self.done.contains_key(&start) {
            return;
        }
        // An ED chunk opens a group too; a flood of them is budgeted the
        // same way a data flood is.
        if self.budget.is_limited() && !self.groups.contains_key(&start) {
            while self.open_groups() >= self.budget.max_open_groups {
                if !self.evict_idle(start, "groups", now) {
                    return self.shed_into(start, chunk.payload.len() as u64, out);
                }
            }
        }
        let mut digest = [0u8; 8];
        digest.copy_from_slice(&chunk.payload);
        let group = self.group_entry(start, now);
        group.ed = Some(digest);
        self.try_complete_into(start, now, out)
    }

    /// Writes payload bytes into the application space (one data touch per
    /// byte).
    fn place(&mut self, first_element: u64, payload: &[u8]) {
        let esize = self.params.elem_size as usize;
        let at = first_element as usize * esize;
        self.app[at..at + payload.len()].copy_from_slice(payload);
        self.stats.data_touches += payload.len() as u64;
        if self.obs_on {
            self.hot.data_touches.add(&*self.obs, payload.len() as u64);
        }
    }

    fn stage(&mut self, bytes: u64) {
        self.stats.buffered_bytes += bytes;
        self.stats.peak_buffered_bytes = self
            .stats
            .peak_buffered_bytes
            .max(self.stats.buffered_bytes);
        if let Some(g) = &self.budget.global {
            g.add(bytes);
        }
        if self.obs_on {
            self.obs
                .observe("transport.rx.buffered_bytes", self.stats.buffered_bytes);
            // Staged bytes are a touch too (they reach a buffer before the
            // application); mirror the stat the callers accumulate.
            self.hot.data_touches.add(&*self.obs, bytes);
        }
    }

    fn unstage(&mut self, bytes: u64) {
        self.stats.buffered_bytes = self.stats.buffered_bytes.saturating_sub(bytes);
        if let Some(g) = &self.budget.global {
            g.sub(bytes);
        }
    }

    fn drain_reorder_queue(&mut self, now: u64) {
        while let Some((chunk, arrived)) = self.reorder_q.remove(&self.in_order) {
            let len = chunk.header.len as u64;
            self.unstage(chunk.payload.len() as u64);
            let waited = now.saturating_sub(arrived);
            self.stats.holding_delay += waited;
            if self.obs_on {
                self.obs.counter("transport.rx.holding_delay_ns", waited);
                self.obs
                    .span_close(now, SpanId::new(Self::chunk_labels(&chunk), Stage::Hold));
            }
            self.place(self.in_order, &chunk.payload);
            self.in_order += len;
        }
    }

    /// Marks a group failed and reports it (once).
    fn group_failure_into(&mut self, start: u64, reason: FailureReason, out: &mut Vec<RxEvent>) {
        // A delivered group's verdict is final: the legacy path found the
        // still-present group with `reported` set and returned silently.
        // Without this guard a fresh group would be conjured and a spurious
        // failure reported for an already-verified TPDU.
        if self.done.contains_key(&start) {
            return;
        }
        let now = self.last_now;
        let group = self.group_entry(start, now);
        if group.reported {
            return;
        }
        group.failed = Some(reason);
        group.reported = true;
        self.stats.tpdus_failed += 1;
        if self.obs_on {
            self.obs.counter("transport.rx.tpdus_failed", 1);
            self.obs.event(
                now,
                Event::ChunkRejected {
                    labels: Labels::new(self.params.conn_id, start as u32, 0),
                    reason: reason.as_str(),
                },
            );
            // The verdict — even a condemning one — ends the verify span.
            self.obs
                .span_close(now, SpanId::new(self.group_labels(start), Stage::Verify));
        }
        out.push(RxEvent::TpduFailed { start, reason });
    }

    /// Checks whether the group at `start` is complete and verifiable.
    /// On delivery the group's heavy state is recycled into the pool and a
    /// compact [`Done`] record takes its place.
    fn try_complete_into(&mut self, start: u64, now: u64, out: &mut Vec<RxEvent>) {
        let Some(group) = self.groups.get_mut(&start) else {
            return;
        };
        if group.reported || group.failed.is_some() {
            return;
        }
        let (Some(digest), true) = (group.ed, group.tracker.is_complete()) else {
            return;
        };
        if !group.inv.matches(digest) {
            // Discard staged data; the retransmission will replace it.
            // Summing first and clearing in place keeps the held Vec's
            // capacity for the retransmission (the arithmetic is identical
            // to per-chunk unstaging: unstage is a plain subtraction).
            let freed: u64 = group.held.iter().map(|(c, _)| c.payload.len() as u64).sum();
            group.held.clear();
            self.unstage(freed);
            if self.obs_on {
                self.obs.counter("wsc.verify_fail", 1);
                self.obs
                    .degraded(now, "verify-failure", self.params.conn_id);
            }
            return self.group_failure_into(start, FailureReason::EdMismatch, out);
        }
        let mut group = self.groups.remove(&start).expect("present");
        let elements = group.elements;
        if self.obs_on {
            self.hot.verify_pass.add(&*self.obs, 1);
            self.obs
                .observe("wsc.runs_per_tpdu", group.inv.absorbed_runs());
        }
        // Reassemble mode releases the staged chunks to the app now.
        // `drain` preserves arrival order (the obs span-close order the
        // lineage trace pins) and keeps the Vec's capacity for the pool.
        for (chunk, arrived) in group.held.drain(..) {
            let first = self.unwrap_csn(chunk.header.conn.sn);
            self.unstage(chunk.payload.len() as u64);
            let waited = now.saturating_sub(arrived);
            self.stats.holding_delay += waited;
            if self.obs_on {
                self.obs.counter("transport.rx.holding_delay_ns", waited);
                self.obs
                    .span_close(now, SpanId::new(Self::chunk_labels(&chunk), Stage::Hold));
            }
            self.place(first, &chunk.payload);
        }
        self.delivered.push(start);
        self.stats.tpdus_delivered += 1;
        if self.obs_on {
            self.hot.tpdus_delivered.add(&*self.obs, 1);
            // A delivery is the routine case — one per TPDU at line rate.
            // The verbose trace wants each one; the always-on flight ring
            // records anomalies, and flooding it with deliveries would both
            // evict the history a postmortem needs and put a mutex on the
            // per-TPDU path.
            if self.obs_verbose {
                self.obs.event(
                    now,
                    Event::GroupDelivered {
                        conn_id: self.params.conn_id,
                        start: start as u32,
                        bytes: (elements * self.params.elem_size as u64) as u32,
                    },
                );
            }
            // Verdict reached: the verify span closes, and delivery is
            // marked with a zero-duration `deliver` span.
            let labels = self.group_labels(start);
            self.obs.span_close(now, SpanId::new(labels, Stage::Verify));
            let deliver = SpanId::new(labels, Stage::Deliver);
            self.obs.span_open(now, deliver);
            self.obs.span_close(now, deliver);
        }
        let end = group
            .tracker
            .known_end()
            .expect("complete group knows its end");
        self.done.insert(
            start,
            Done {
                elements,
                end,
                code: group.inv.code(),
                digest: group.inv.digest(),
            },
        );
        self.recycle_group(group);
        out.push(RxEvent::TpduDelivered { start, elements });
        if self.closed {
            out.push(RxEvent::ConnectionClosed);
        }
    }

    /// Expires every incomplete group (fragment timeout at end of run),
    /// reporting each as a reassembly error.
    pub fn expire_incomplete(&mut self) -> Vec<RxEvent> {
        let starts: Vec<u64> = self
            .groups
            .iter()
            .filter(|(_, g)| !g.reported)
            .map(|(&s, _)| s)
            .collect();
        let mut events = Vec::new();
        for s in starts {
            self.group_failure_into(s, FailureReason::ReassemblyError, &mut events);
        }
        events
    }

    /// Builds the current acknowledgment, including the precise missing
    /// element ranges so the sender can retransmit sub-chunks only.
    pub fn make_ack(&self) -> AckInfo {
        let prefix = self.verified_prefix();
        let mut sacks: Vec<u64> = self
            .delivered
            .iter()
            .copied()
            .filter(|&s| s >= prefix)
            .collect();
        sacks.sort_unstable();
        sacks.dedup();
        let mut gaps: Vec<(u64, u64)> = Vec::new();
        let mut need_ed: Vec<u64> = Vec::new();
        for (&start, g) in &self.groups {
            if g.reported && g.failed.is_none() {
                continue; // delivered
            }
            if g.failed.is_some() {
                // Verification failed: the whole TPDU must come again.
                let span = g.elements.max(g.tracker.covered());
                gaps.push((start, start + span.max(1)));
            } else {
                for (lo, hi) in g.tracker.missing() {
                    gaps.push((start + lo, start + hi));
                }
                if g.tracker.is_complete() && g.ed.is_none() {
                    need_ed.push(start);
                }
            }
        }
        gaps.sort_unstable();
        need_ed.sort_unstable();
        AckInfo {
            cumulative: prefix,
            sacks,
            gaps,
            need_ed,
            pressure: self.under_pressure(),
        }
    }

    /// True when occupancy stands at or above 3/4 of any configured cap —
    /// the back-pressure signal [`make_ack`](Self::make_ack) forwards so
    /// the sender defers repairs instead of livelocking retransmissions
    /// into a buffer that will shed them.
    pub fn under_pressure(&self) -> bool {
        if !self.budget.is_limited() {
            return false;
        }
        let hot = |held: u64, cap: u64| cap != u64::MAX && held >= cap - cap / 4;
        let b = &self.budget;
        hot(self.stats.buffered_bytes, b.max_held_bytes)
            || (b.max_open_groups != usize::MAX
                && self.open_groups() >= b.max_open_groups - b.max_open_groups / 4)
            || (b.max_fragments != usize::MAX
                && self.claimed.fragments() >= b.max_fragments - b.max_fragments / 4)
            || b.global
                .as_ref()
                .is_some_and(|g| hot(g.held_bytes(), g.cap_bytes()))
    }

    /// The typed budget-exhaustion error, once any bytes have been shed.
    pub fn budget_error(&self) -> Option<TransportError> {
        (self.stats.shed_bytes > 0).then_some(TransportError::BudgetExhausted {
            conn_id: self.params.conn_id,
            shed_bytes: self.stats.shed_bytes,
            evictions: self.stats.evictions,
            held_bytes: self.stats.buffered_bytes,
        })
    }

    /// Starts of groups that failed verification and need retransmission.
    pub fn failed_starts(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .groups
            .iter()
            .filter(|(_, g)| g.failed.is_some())
            .map(|(&s, _)| s)
            .collect();
        v.sort_unstable();
        v
    }

    /// Clears the state of a failed or incomplete group so a retransmission
    /// (with identical identifiers, §3.3) can be verified afresh.
    pub fn reset_group(&mut self, start: u64) {
        if let Some(g) = self.groups.remove(&start) {
            // Release exactly this group's claims so retransmitted data may
            // land (tagged claims free without arithmetic on the span).
            self.claimed.release(start);
            let freed: u64 = g.held.iter().map(|(c, _)| c.payload.len() as u64).sum();
            self.unstage(freed);
            self.recycle_group(g);
        } else if self.done.remove(&start).is_some() {
            // A delivered group: its heavy state is long recycled; drop the
            // verdict record and free the claims, as the legacy removal did.
            self.claimed.release(start);
        }
    }

    /// Quiesces the receiver into a reusable shell: every staged byte is
    /// released (per-connection and global budget), every open group is
    /// recycled into the pool, and all per-connection progress (claims,
    /// delivery records, statistics, close bit) is cleared — while every
    /// container keeps its capacity. A quiesced shell re-arms for a new
    /// connection via [`Self::rearm`] without touching the allocator; the
    /// connection table's admission pool is built on exactly this.
    pub fn quiesce(&mut self) {
        // One arithmetic release covers everything staged — reorder-queue
        // chunks and held group chunks both flowed through `stage`.
        let staged = self.stats.buffered_bytes;
        self.unstage(staged);
        while let Some(&start) = self.groups.keys().next() {
            let g = self.groups.remove(&start).expect("key just observed");
            self.recycle_group(g);
        }
        self.reorder_q.clear();
        self.done.clear();
        self.delivered.clear();
        self.claimed.clear();
        self.in_order = 0;
        self.closed = false;
        self.stats = RxStats::default();
        self.last_now = 0;
        self.app.fill(0);
    }

    /// Re-arms a quiesced shell for a new connection: [`Self::quiesce`]
    /// then swap in the new parameters. The shell keeps its delivery mode,
    /// invariant layout, application-space capacity, overlap policy, budget
    /// and observability sink — re-arming is for homogeneous workloads
    /// (same element size); callers with per-connection policy or budget
    /// apply them after re-arm (`set_policy` / `set_budget`, neither
    /// allocates).
    pub fn rearm(&mut self, params: ConnectionParams) {
        debug_assert_eq!(
            params.elem_size, self.params.elem_size,
            "re-arm keeps the application space; the element size must match"
        );
        self.quiesce();
        self.params = params;
    }

    /// The connection parameters.
    pub fn params(&self) -> &ConnectionParams {
        &self.params
    }

    /// The verified WSC-2 code of a delivered TPDU, or `None` if the group
    /// at `start` was never delivered (missing, failed, or still pending).
    ///
    /// Delivered groups keep their verified code in the `done` tier, so the
    /// code a parallel worker folds into its delivery transcript is exactly
    /// the one the ED comparison accepted.
    pub fn delivered_code(&self, start: u64) -> Option<chunks_wsc::Wsc2> {
        self.done.get(&start).map(|d| d.code)
    }

    /// `(start, digest)` for every delivered TPDU, sorted by start — the
    /// per-connection verification transcript the differential harness
    /// compares across pipelines.
    pub fn delivered_digests(&self) -> Vec<(u64, [u8; 8])> {
        let mut v: Vec<(u64, [u8; 8])> = self.done.iter().map(|(&s, d)| (s, d.digest)).collect();
        v.sort_unstable();
        v
    }

    /// Starts of delivered TPDUs, in delivery order.
    pub fn delivered_starts(&self) -> &[u64] {
        &self.delivered
    }
}

/// Copies the intersection of `[lo, hi)` (connection-space elements) with
/// a staged chunk's span out of `new` into the chunk's payload; returns the
/// bytes rewritten. `first` is the chunk's first connection-space element.
fn overlay_into_chunk(
    c: &mut Chunk,
    first: u64,
    lo: u64,
    hi: u64,
    new: &[u8],
    esize: usize,
) -> u64 {
    let clen = c.header.len as u64;
    let (s, e) = (first.max(lo), (first + clen).min(hi));
    if s >= e {
        return 0;
    }
    // Must own: the staged payload is (in the zero-copy path) a slice of a
    // shared packet buffer; rewriting bytes in place would corrupt every
    // other view of that buffer. Overlap overwrite is the one receive-side
    // operation that mutates payload bytes, so it pays for a private copy —
    // and only on the chunks it actually rewrites.
    let mut raw = c.payload.to_vec();
    raw[(s - first) as usize * esize..(e - first) as usize * esize]
        .copy_from_slice(&new[(s - lo) as usize * esize..(e - lo) as usize * esize]);
    c.payload = raw.into();
    (e - s) * esize as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Framer;
    use chunks_core::frag::split;
    use chunks_core::packet::pack;

    fn params() -> ConnectionParams {
        ConnectionParams {
            conn_id: 0xA,
            elem_size: 1,
            initial_csn: 100,
            tpdu_elements: 8,
        }
    }

    fn layout() -> InvariantLayout {
        InvariantLayout::with_data_symbols(4096)
    }

    fn rx(mode: DeliveryMode) -> Receiver {
        Receiver::new(mode, params(), layout(), 1 << 16)
    }

    fn framed(data: &[u8]) -> Vec<crate::frame::Tpdu> {
        Framer::new(params(), layout()).frame_simple(data, 0xF, false)
    }

    #[test]
    fn in_order_delivery_immediate() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh12345678");
        let mut delivered = 0;
        for t in &tpdus {
            for c in t.all_chunks() {
                for e in r.handle_chunk(c, 0) {
                    if matches!(e, RxEvent::TpduDelivered { .. }) {
                        delivered += 1;
                    }
                }
            }
        }
        assert_eq!(delivered, 2);
        assert_eq!(&r.app_data()[..16], b"abcdefgh12345678");
        // Immediate mode: exactly one touch per payload byte.
        assert_eq!(r.stats.data_touches, 16);
        assert_eq!(r.stats.peak_buffered_bytes, 0);
        assert_eq!(r.verified_prefix(), 16);
    }

    #[test]
    fn disordered_fragmented_delivery_immediate() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        // Fragment the single data chunk and deliver the pieces backwards,
        // ED chunk first.
        let t = &tpdus[0];
        let (a, rest) = split(&t.chunks[0], 3).unwrap();
        let (b, c) = split(&rest, 2).unwrap();
        let mut events = Vec::new();
        for chunk in [t.ed.clone(), c, b, a] {
            events.extend(r.handle_chunk(chunk, 0));
        }
        assert!(events.iter().any(|e| matches!(
            e,
            RxEvent::TpduDelivered {
                start: 0,
                elements: 8
            }
        )));
        assert_eq!(&r.app_data()[..8], b"abcdefgh");
        assert_eq!(r.stats.data_touches, 8, "still one touch per byte");
    }

    #[test]
    fn reassemble_mode_touches_twice() {
        let mut r = rx(DeliveryMode::Reassemble);
        let tpdus = framed(b"abcdefgh");
        for c in tpdus[0].all_chunks() {
            r.handle_chunk(c, 0);
        }
        assert_eq!(&r.app_data()[..8], b"abcdefgh");
        assert_eq!(r.stats.data_touches, 16, "buffer write + final copy");
        assert_eq!(r.stats.peak_buffered_bytes, 8);
        assert_eq!(r.stats.buffered_bytes, 0, "released on verification");
    }

    #[test]
    fn reorder_mode_in_order_is_single_touch() {
        let mut r = rx(DeliveryMode::Reorder);
        let tpdus = framed(b"abcdefgh");
        for c in tpdus[0].all_chunks() {
            r.handle_chunk(c, 0);
        }
        assert_eq!(r.stats.data_touches, 8);
        assert_eq!(&r.app_data()[..8], b"abcdefgh");
    }

    #[test]
    fn reorder_mode_buffers_out_of_order() {
        let mut r = rx(DeliveryMode::Reorder);
        let tpdus = framed(b"abcdefgh");
        let t = &tpdus[0];
        let (a, b) = split(&t.chunks[0], 4).unwrap();
        r.handle_chunk(b, 10); // out of order: staged
        assert_eq!(r.stats.buffered_bytes, 4);
        r.handle_chunk(a, 20); // fills the gap, drains the queue
        r.handle_chunk(t.ed.clone(), 30);
        assert_eq!(&r.app_data()[..8], b"abcdefgh");
        assert_eq!(r.stats.buffered_bytes, 0);
        assert_eq!(r.stats.data_touches, 8 + 4, "staged bytes touched twice");
        assert_eq!(r.stats.holding_delay, 10, "tail waited 20 - 10");
    }

    #[test]
    fn payload_corruption_rejected_by_ed() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        let t = &tpdus[0];
        let mut bad = t.chunks[0].clone();
        let mut raw = bad.payload.to_vec();
        raw[2] ^= 0x10;
        bad.payload = raw.into();
        let mut events = r.handle_chunk(bad, 0);
        events.extend(r.handle_chunk(t.ed.clone(), 0));
        assert!(events.iter().any(|e| matches!(
            e,
            RxEvent::TpduFailed {
                reason: FailureReason::EdMismatch,
                ..
            }
        )));
    }

    #[test]
    fn duplicate_chunks_rejected_before_checksum() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        let t = &tpdus[0];
        let mut events = r.handle_chunk(t.chunks[0].clone(), 0);
        events.extend(r.handle_chunk(t.chunks[0].clone(), 0));
        events.extend(r.handle_chunk(t.ed.clone(), 0));
        assert_eq!(r.stats.duplicate_chunks, 1);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, RxEvent::TpduDelivered { .. })),
            "duplicate must not corrupt the incremental checksum"
        );
    }

    #[test]
    fn retransmission_after_failure_succeeds() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        let t = &tpdus[0];
        let mut bad = t.chunks[0].clone();
        let mut raw = bad.payload.to_vec();
        raw[0] ^= 1;
        bad.payload = raw.into();
        r.handle_chunk(bad, 0);
        r.handle_chunk(t.ed.clone(), 0);
        assert_eq!(r.failed_starts(), vec![0]);
        // Retransmit with identical identifiers after resetting the group.
        r.reset_group(0);
        let mut events = Vec::new();
        for c in t.all_chunks() {
            events.extend(r.handle_chunk(c, 1));
        }
        assert!(events
            .iter()
            .any(|e| matches!(e, RxEvent::TpduDelivered { .. })));
        assert_eq!(&r.app_data()[..8], b"abcdefgh");
    }

    #[test]
    fn packets_roundtrip_through_receiver() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh12345678");
        let chunks: Vec<Chunk> = tpdus.iter().flat_map(|t| t.all_chunks()).collect();
        let packets = pack(chunks, 64).unwrap();
        let mut delivered = 0;
        for p in &packets {
            for e in r.handle_packet(p, 0) {
                if matches!(e, RxEvent::TpduDelivered { .. }) {
                    delivered += 1;
                }
            }
        }
        assert_eq!(delivered, 2);
        assert_eq!(&r.app_data()[..16], b"abcdefgh12345678");
    }

    #[test]
    fn ack_reflects_verified_prefix_and_sacks() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(&[7u8; 24]); // three TPDUs of 8
                                        // Deliver TPDU 0 and TPDU 2, skip TPDU 1.
        for t in [&tpdus[0], &tpdus[2]] {
            for c in t.all_chunks() {
                r.handle_chunk(c, 0);
            }
        }
        let ack = r.make_ack();
        assert_eq!(ack.cumulative, 8);
        assert_eq!(ack.sacks, vec![16]);
    }

    #[test]
    fn csn_corruption_is_cross_group_consistency_failure() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(&[7u8; 16]); // two TPDUs of 8
                                        // Deliver TPDU 0 intact.
        for c in tpdus[0].all_chunks() {
            r.handle_chunk(c, 0);
        }
        // TPDU 1's chunk with corrupted C.SN pointing into TPDU 0's range
        // (misaligned, so it is not mistaken for a benign duplicate).
        let mut bad = tpdus[1].chunks[0].clone();
        bad.header.conn.sn = bad.header.conn.sn.wrapping_sub(3);
        let events = r.handle_chunk(bad, 0);
        assert!(events.iter().any(|e| matches!(
            e,
            RxEvent::TpduFailed {
                reason: FailureReason::Consistency,
                ..
            }
        )));
    }

    #[test]
    fn xsn_corruption_is_consistency_failure() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        let t = &tpdus[0];
        let (a, mut b) = split(&t.chunks[0], 4).unwrap();
        b.header.ext.sn = b.header.ext.sn.wrapping_add(3);
        let mut events = r.handle_chunk(a, 0);
        events.extend(r.handle_chunk(b, 0));
        assert!(events.iter().any(|e| matches!(
            e,
            RxEvent::TpduFailed {
                reason: FailureReason::Consistency,
                ..
            }
        )));
    }

    #[test]
    fn tsn_corruption_is_reassembly_error() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        let t = &tpdus[0];
        let (a, mut b) = split(&t.chunks[0], 4).unwrap();
        // Corrupt T.SN: the chunk claims a different in-TPDU position, so
        // it lands in a ghost group that never completes.
        b.header.tpdu.sn = b.header.tpdu.sn.wrapping_add(2);
        r.handle_chunk(a, 0);
        r.handle_chunk(b, 0);
        r.handle_chunk(t.ed.clone(), 0);
        let events = r.expire_incomplete();
        assert!(events.iter().any(|e| matches!(
            e,
            RxEvent::TpduFailed {
                reason: FailureReason::ReassemblyError,
                ..
            }
        )));
    }

    #[test]
    fn tid_corruption_is_ed_mismatch() {
        // The explicit T.ID is protected by the invariant; grouping does not
        // use it, so the TPDU completes and verification catches it.
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        let t = &tpdus[0];
        let mut bad = t.chunks[0].clone();
        bad.header.tpdu.id ^= 0x55;
        let mut events = r.handle_chunk(bad, 0);
        events.extend(r.handle_chunk(t.ed.clone(), 0));
        assert!(events.iter().any(|e| matches!(
            e,
            RxEvent::TpduFailed {
                reason: FailureReason::EdMismatch,
                ..
            }
        )));
    }

    #[test]
    fn connection_close_event() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = Framer::new(params(), layout()).frame_simple(b"abcdefgh", 0xF, true);
        let mut events = Vec::new();
        for c in tpdus[0].all_chunks() {
            events.extend(r.handle_chunk(c, 0));
        }
        assert!(events.contains(&RxEvent::ConnectionClosed));
        assert!(r.is_closed());
    }

    #[test]
    fn wrong_elem_size_rejected() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        let mut bad = tpdus[0].chunks[0].clone();
        bad.header.size = 2;
        bad.header.len = 4;
        let events = r.handle_chunk(bad, 0);
        assert!(events.iter().any(|e| matches!(
            e,
            RxEvent::TpduFailed {
                reason: FailureReason::BadChunk,
                ..
            }
        )));
    }
}
