//! The receiving side: immediate processing, reordering, or physical
//! reassembly (§3.3), over one shared verification engine.
//!
//! The receiver identifies the TPDU a chunk belongs to by its *position in
//! connection space*: `C.SN − T.SN` names the TPDU's first element, and is
//! invariant under fragmentation (it is exactly the implicit `T.ID` of
//! Appendix A). The explicit `T.ID` is therefore pure protected data — its
//! corruption surfaces as an error-detection-code mismatch, matching
//! Table 1. `C.SN` corruption moves a chunk into the *wrong* TPDU group,
//! where it collides with data owned by another group — the cross-group
//! consistency check. `T.SN` corruption breaks virtual reassembly.
//!
//! Every arriving byte is counted as a *data touch* when it is written
//! anywhere (application space or a staging buffer), so the three delivery
//! modes make the paper's §3.3 claim quantitative: immediate processing
//! touches each byte once; physical reassembly touches it twice; reordering
//! falls in between, depending on how much disorder the network produced.
//!
//! Per-group error detection runs through the streaming verification path:
//! each group's [`TpduInvariant`] absorbs chunk payloads via
//! `chunks_wsc::Wsc2Stream`, whose cached cursor weight makes contiguous
//! element runs — the common case even under heavy fragmentation — cost one
//! table multiply per run instead of an `alpha^position` exponentiation per
//! element (see docs/ARCHITECTURE.md, "The hot path").

use std::collections::HashMap;
use std::sync::Arc;

use chunks_core::chunk::Chunk;
use chunks_core::label::ChunkType;
use chunks_core::packet::{unpack, unpack_observed, Packet};
use chunks_obs::{Event, Labels, ObsSink, SpanId, Stage};
use chunks_vreasm::{PduTracker, TrackEvent};
use chunks_wsc::{InvariantLayout, TpduInvariant};

use crate::ack::AckInfo;
use crate::conn::{ConnectionParams, Signal};

/// The three receiver strategies of §3.3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeliveryMode {
    /// Process chunks as they arrive: place data straight into the
    /// application address space ("reassembly in place"). One touch per
    /// byte; no reassembly buffer at all.
    Immediate,
    /// Deliver data to the application strictly in connection-sequence
    /// order, buffering out-of-order chunks until the gap fills.
    Reorder,
    /// Physically reassemble each TPDU and verify it before any byte
    /// reaches the application. Two touches per byte, always.
    Reassemble,
}

/// Why a TPDU was rejected — the detection channels of Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureReason {
    /// The recomputed WSC-2 invariant did not match the received ED chunk.
    EdMismatch,
    /// A cross-field consistency check failed (`C.SN − T.SN` collision
    /// across groups, or `C.SN − X.SN` not constant within an external
    /// PDU).
    Consistency,
    /// Virtual reassembly failed: overlap, data past the stop bit,
    /// conflicting stop positions, or the TPDU never completed.
    ReassemblyError,
    /// The chunk itself was malformed (wire decode failed, wrong element
    /// size for the connection).
    BadChunk,
}

impl FailureReason {
    /// A short stable kebab-case tag, used as the `reason` of a
    /// [`Event::ChunkRejected`] trace event.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureReason::EdMismatch => "ed-mismatch",
            FailureReason::Consistency => "consistency",
            FailureReason::ReassemblyError => "reassembly-error",
            FailureReason::BadChunk => "bad-chunk",
        }
    }
}

/// Events surfaced to the caller.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RxEvent {
    /// A TPDU passed verification; its data is (or already was, in
    /// immediate mode) in the application space.
    TpduDelivered {
        /// Connection-space index of the TPDU's first element.
        start: u64,
        /// Elements delivered.
        elements: u64,
    },
    /// A TPDU was rejected.
    TpduFailed {
        /// Connection-space index of the TPDU's first element.
        start: u64,
        /// The detection channel that caught it.
        reason: FailureReason,
    },
    /// A connection signal arrived.
    Signalled(Signal),
    /// An acknowledgment arrived (for the data we sent the other way).
    Acked(AckInfo),
    /// The connection was closed by the `C.ST` bit.
    ConnectionClosed,
}

/// Receiver statistics — the quantities the paper's performance argument
/// turns on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RxStats {
    /// Bytes written anywhere (application space or staging buffers).
    pub data_touches: u64,
    /// Bytes currently staged in reorder/reassembly buffers.
    pub buffered_bytes: u64,
    /// High-water mark of staged bytes.
    pub peak_buffered_bytes: u64,
    /// Duplicate chunks rejected before processing.
    pub duplicate_chunks: u64,
    /// Chunks accepted.
    pub chunks_accepted: u64,
    /// TPDUs delivered.
    pub tpdus_delivered: u64,
    /// TPDUs rejected.
    pub tpdus_failed: u64,
    /// Malformed packets dropped.
    pub bad_packets: u64,
    /// Sum over delivered elements of (delivery time − arrival time), in
    /// the caller's time unit: the buffering latency immediate mode avoids.
    pub holding_delay: u64,
}

/// Per-TPDU verification state.
#[derive(Debug)]
struct Group {
    tracker: PduTracker,
    inv: TpduInvariant,
    /// `C.SN − X.SN` per external PDU id (Table 1 consistency check).
    x_deltas: HashMap<u32, u32>,
    ed: Option<[u8; 8]>,
    /// Chunks staged until verification (Reassemble mode only).
    held: Vec<(Chunk, u64)>,
    /// Verification already failed (sticky, reported once).
    failed: Option<FailureReason>,
    reported: bool,
    elements: u64,
}

/// The chunk receiver for one connection.
#[derive(Debug)]
pub struct Receiver {
    mode: DeliveryMode,
    params: ConnectionParams,
    layout: InvariantLayout,
    /// Application address space; element `i` (connection-space) lives at
    /// bytes `[i*size, (i+1)*size)`.
    app: Vec<u8>,
    /// Which connection-space elements have been claimed by a group.
    claimed: chunks_vreasm::IntervalSet,
    /// Delivery cursor for Reorder mode (elements below are with the app).
    in_order: u64,
    /// Out-of-order staging for Reorder mode: element index → (chunk, when).
    reorder_q: HashMap<u64, (Chunk, u64)>,
    groups: HashMap<u64, Group>,
    /// Verified-and-delivered TPDU starts (drives acks).
    delivered: Vec<u64>,
    closed: bool,
    /// Accumulated statistics.
    pub stats: RxStats,
    /// Observability sink; [`chunks_obs::NullSink`] unless
    /// [`with_obs`](Self::with_obs) installed a recording one.
    obs: Arc<dyn ObsSink>,
    /// Cached `obs.enabled()`: the disabled hot path is this one branch.
    obs_on: bool,
    /// Last virtual-clock time seen by `handle_chunk`/`handle_packet`;
    /// stamps trace events emitted from call paths without a `now`.
    last_now: u64,
}

impl Receiver {
    /// Creates a receiver for a connection, able to hold `capacity_elements`
    /// of application data.
    pub fn new(
        mode: DeliveryMode,
        params: ConnectionParams,
        layout: InvariantLayout,
        capacity_elements: u64,
    ) -> Self {
        Receiver {
            mode,
            params,
            layout,
            app: vec![0; capacity_elements as usize * params.elem_size as usize],
            claimed: chunks_vreasm::IntervalSet::new(),
            in_order: 0,
            reorder_q: HashMap::new(),
            groups: HashMap::new(),
            delivered: Vec::new(),
            closed: false,
            stats: RxStats::default(),
            obs: chunks_obs::null(),
            obs_on: false,
            last_now: 0,
        }
    }

    /// Installs an observability sink (builder form). With the default
    /// [`chunks_obs::NullSink`] every instrumentation site reduces to one
    /// branch on a cached bool.
    pub fn with_obs(mut self, sink: Arc<dyn ObsSink>) -> Self {
        self.set_obs(sink);
        self
    }

    /// Installs an observability sink in place.
    pub fn set_obs(&mut self, sink: Arc<dyn ObsSink>) {
        self.obs_on = sink.enabled();
        self.obs = sink;
    }

    /// The delivery mode.
    pub fn mode(&self) -> DeliveryMode {
        self.mode
    }

    /// The application address space (element `i` at `i * elem_size`).
    pub fn app_data(&self) -> &[u8] {
        &self.app
    }

    /// Contiguously verified prefix, in elements.
    pub fn verified_prefix(&self) -> u64 {
        let mut starts: Vec<(u64, u64)> = self
            .delivered
            .iter()
            .map(|&s| {
                let elements = self.groups.get(&s).map(|g| g.elements).unwrap_or_default();
                (s, elements)
            })
            .collect();
        starts.sort_unstable();
        let mut cursor = 0;
        for (s, n) in starts {
            if s > cursor {
                break;
            }
            cursor = cursor.max(s + n);
        }
        cursor
    }

    /// True once the `C.ST` bit has been seen on verified data.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Unwraps a `C.SN` to a connection-space element index.
    fn unwrap_csn(&self, c_sn: u32) -> u64 {
        c_sn.wrapping_sub(self.params.initial_csn) as u64
    }

    /// Group-level span labels: the TPDU is identified by its start, so the
    /// `verify` and `deliver` spans key on `(C.ID, start, 0)`.
    fn group_labels(&self, start: u64) -> Labels {
        Labels::new(self.params.conn_id, start as u32, 0)
    }

    /// Chunk-level span labels, straight off the header.
    fn chunk_labels(chunk: &Chunk) -> Labels {
        Labels::new(
            chunk.header.conn.id,
            chunk.header.tpdu.sn,
            chunk.header.ext.sn,
        )
    }

    /// Fetches or creates the group at `start`. A group's first arrival —
    /// data, ED, or the failure that condemns it — opens its `verify` span;
    /// the span closes at the WSC-2 verdict (delivery or failure).
    fn group_entry(&mut self, start: u64, now: u64) -> &mut Group {
        if self.obs_on && !self.groups.contains_key(&start) {
            self.obs
                .span_open(now, SpanId::new(self.group_labels(start), Stage::Verify));
        }
        let layout = self.layout;
        self.groups.entry(start).or_insert_with(|| Group {
            tracker: PduTracker::new(),
            inv: TpduInvariant::new(layout).expect("layout validated at framer"),
            x_deltas: HashMap::new(),
            ed: None,
            held: Vec::new(),
            failed: None,
            reported: false,
            elements: 0,
        })
    }

    /// Handles one arriving packet at time `now`.
    pub fn handle_packet(&mut self, packet: &Packet, now: u64) -> Vec<RxEvent> {
        self.last_now = now;
        let parsed = if self.obs_on {
            unpack_observed(packet, now, &*self.obs)
        } else {
            unpack(packet)
        };
        let chunks = match parsed {
            Ok(c) => c,
            Err(_) => {
                self.stats.bad_packets += 1;
                if self.obs_on {
                    self.obs.counter("transport.rx.bad_packets", 1);
                }
                return Vec::new();
            }
        };
        let mut events = Vec::new();
        for chunk in chunks {
            events.extend(self.handle_chunk(chunk, now));
        }
        events
    }

    /// Handles one chunk at time `now`.
    pub fn handle_chunk(&mut self, chunk: Chunk, now: u64) -> Vec<RxEvent> {
        self.last_now = now;
        match chunk.header.ty {
            ChunkType::Data => self.handle_data(chunk, now),
            ChunkType::ErrorDetection => self.handle_ed(chunk, now),
            ChunkType::Signal => match Signal::from_chunk(&chunk) {
                Ok(s) => vec![RxEvent::Signalled(s)],
                Err(_) => {
                    self.stats.bad_packets += 1;
                    if self.obs_on {
                        self.obs.counter("transport.rx.bad_packets", 1);
                    }
                    Vec::new()
                }
            },
            ChunkType::Ack => match AckInfo::from_chunk(&chunk) {
                Ok(a) => vec![RxEvent::Acked(a)],
                Err(_) => {
                    self.stats.bad_packets += 1;
                    if self.obs_on {
                        self.obs.counter("transport.rx.bad_packets", 1);
                    }
                    Vec::new()
                }
            },
            ChunkType::Padding => Vec::new(),
        }
    }

    fn handle_data(&mut self, chunk: Chunk, now: u64) -> Vec<RxEvent> {
        let h = chunk.header;
        // SIZE is signalled per connection; a mismatch is a corrupted SIZE
        // field (Table 1: reassembly error).
        if h.size != self.params.elem_size {
            return self.group_failure(
                self.unwrap_csn(h.conn.sn.wrapping_sub(h.tpdu.sn)),
                FailureReason::BadChunk,
            );
        }
        let start = self.unwrap_csn(h.conn.sn.wrapping_sub(h.tpdu.sn));
        let first = self.unwrap_csn(h.conn.sn);
        let len = h.len as u64;
        let esize = self.params.elem_size as usize;
        if (first + len) as usize * esize > self.app.len() {
            return self.group_failure(start, FailureReason::BadChunk);
        }

        let group = self.group_entry(start, now);

        // Virtual reassembly within the TPDU. Duplicates must be rejected
        // *before* the invariant absorbs them (§3.3). A retransmission cut
        // at different points may only *partially* duplicate received data;
        // because chunks stay chunks under splitting (Appendix C), the
        // receiver simply extracts the still-missing sub-chunks and
        // processes those.
        let uncovered = group.tracker.uncovered(h.tpdu.sn as u64, len);
        if uncovered.is_empty() {
            self.stats.duplicate_chunks += 1;
            if self.obs_on {
                self.obs.counter("transport.rx.duplicate_chunks", 1);
            }
            return Vec::new();
        }
        if uncovered != [(h.tpdu.sn as u64, h.tpdu.sn as u64 + len)] {
            self.stats.duplicate_chunks += 1; // partially duplicate
            if self.obs_on {
                self.obs.counter("transport.rx.duplicate_chunks", 1);
            }
            let mut events = Vec::new();
            for (lo, hi) in uncovered {
                let offset = (lo - h.tpdu.sn as u64) as u32;
                let sublen = (hi - lo) as u32;
                match chunks_core::frag::extract(&chunk, offset, sublen) {
                    Ok(piece) => events.extend(self.handle_data(piece, now)),
                    Err(_) => events.extend(self.group_failure(start, FailureReason::BadChunk)),
                }
            }
            return events;
        }
        match group.tracker.offer(h.tpdu.sn as u64, len, h.tpdu.st) {
            TrackEvent::Duplicate => {
                self.stats.duplicate_chunks += 1;
                if self.obs_on {
                    self.obs.counter("transport.rx.duplicate_chunks", 1);
                }
                return Vec::new();
            }
            TrackEvent::Inconsistent => {
                return self.group_failure(start, FailureReason::ReassemblyError);
            }
            TrackEvent::Accepted => {}
        }

        // Cross-group collision: these elements already belong to another
        // TPDU's data — a corrupted C.SN moved this chunk (Table 1:
        // consistency check).
        if self.claimed.overlap(first, first + len) > 0 {
            return self.group_failure(start, FailureReason::Consistency);
        }
        self.claimed.insert(first, first + len);

        let group = self.groups.get_mut(&start).expect("just inserted");
        // X-level consistency: C.SN − X.SN constant per external PDU.
        let x_delta = h.conn.sn.wrapping_sub(h.ext.sn);
        match group.x_deltas.get(&h.ext.id) {
            Some(&d) if d != x_delta => {
                return self.group_failure(start, FailureReason::Consistency);
            }
            Some(_) => {}
            None => {
                group.x_deltas.insert(h.ext.id, x_delta);
            }
        }

        // Incremental end-to-end error detection.
        if let Err(e) = group.inv.absorb_chunk(&h, &chunk.payload) {
            let reason = match e {
                chunks_wsc::InvariantError::IdMismatch => FailureReason::EdMismatch,
                _ => FailureReason::BadChunk,
            };
            return self.group_failure(start, reason);
        }
        group.elements += len;
        self.stats.chunks_accepted += 1;
        if self.obs_on {
            self.obs.counter("transport.rx.chunks_accepted", 1);
            self.obs.counter("vreasm.tracker.accepts", 1);
            self.obs
                .observe("vreasm.tracker.fragments", group.tracker.fragments() as u64);
        }
        if h.conn.st {
            self.closed = true;
        }

        // Mode-specific data movement.
        match self.mode {
            DeliveryMode::Immediate => {
                self.place(first, &chunk.payload);
            }
            DeliveryMode::Reorder => {
                if first == self.in_order {
                    self.place(first, &chunk.payload);
                    self.in_order = first + len;
                    self.drain_reorder_queue(now);
                } else {
                    self.stage(chunk.payload.len() as u64);
                    self.stats.data_touches += chunk.payload.len() as u64;
                    if self.obs_on {
                        self.obs
                            .span_open(now, SpanId::new(Self::chunk_labels(&chunk), Stage::Hold));
                    }
                    self.reorder_q.insert(first, (chunk.clone(), now));
                }
            }
            DeliveryMode::Reassemble => {
                self.stage(chunk.payload.len() as u64);
                self.stats.data_touches += chunk.payload.len() as u64;
                if self.obs_on {
                    self.obs
                        .span_open(now, SpanId::new(Self::chunk_labels(&chunk), Stage::Hold));
                }
                let group = self.groups.get_mut(&start).expect("present");
                group.held.push((chunk.clone(), now));
            }
        }

        self.try_complete(start, now)
    }

    fn handle_ed(&mut self, chunk: Chunk, now: u64) -> Vec<RxEvent> {
        if chunk.payload.len() != 8 {
            self.stats.bad_packets += 1;
            if self.obs_on {
                self.obs.counter("transport.rx.bad_packets", 1);
            }
            return Vec::new();
        }
        let start = self.unwrap_csn(chunk.header.conn.sn);
        let mut digest = [0u8; 8];
        digest.copy_from_slice(&chunk.payload);
        let group = self.group_entry(start, now);
        group.ed = Some(digest);
        self.try_complete(start, now)
    }

    /// Writes payload bytes into the application space (one data touch per
    /// byte).
    fn place(&mut self, first_element: u64, payload: &[u8]) {
        let esize = self.params.elem_size as usize;
        let at = first_element as usize * esize;
        self.app[at..at + payload.len()].copy_from_slice(payload);
        self.stats.data_touches += payload.len() as u64;
        if self.obs_on {
            self.obs
                .counter("transport.rx.data_touches", payload.len() as u64);
        }
    }

    fn stage(&mut self, bytes: u64) {
        self.stats.buffered_bytes += bytes;
        self.stats.peak_buffered_bytes = self
            .stats
            .peak_buffered_bytes
            .max(self.stats.buffered_bytes);
        if self.obs_on {
            self.obs
                .observe("transport.rx.buffered_bytes", self.stats.buffered_bytes);
            // Staged bytes are a touch too (they reach a buffer before the
            // application); mirror the stat the callers accumulate.
            self.obs.counter("transport.rx.data_touches", bytes);
        }
    }

    fn unstage(&mut self, bytes: u64) {
        self.stats.buffered_bytes = self.stats.buffered_bytes.saturating_sub(bytes);
    }

    fn drain_reorder_queue(&mut self, now: u64) {
        while let Some((chunk, arrived)) = self.reorder_q.remove(&self.in_order) {
            let len = chunk.header.len as u64;
            self.unstage(chunk.payload.len() as u64);
            let waited = now.saturating_sub(arrived);
            self.stats.holding_delay += waited;
            if self.obs_on {
                self.obs.counter("transport.rx.holding_delay_ns", waited);
                self.obs
                    .span_close(now, SpanId::new(Self::chunk_labels(&chunk), Stage::Hold));
            }
            self.place(self.in_order, &chunk.payload);
            self.in_order += len;
        }
    }

    /// Marks a group failed and reports it (once).
    fn group_failure(&mut self, start: u64, reason: FailureReason) -> Vec<RxEvent> {
        let now = self.last_now;
        let group = self.group_entry(start, now);
        if group.reported {
            return Vec::new();
        }
        group.failed = Some(reason);
        group.reported = true;
        self.stats.tpdus_failed += 1;
        if self.obs_on {
            self.obs.counter("transport.rx.tpdus_failed", 1);
            self.obs.event(
                now,
                Event::ChunkRejected {
                    labels: Labels::new(self.params.conn_id, start as u32, 0),
                    reason: reason.as_str(),
                },
            );
            // The verdict — even a condemning one — ends the verify span.
            self.obs
                .span_close(now, SpanId::new(self.group_labels(start), Stage::Verify));
        }
        vec![RxEvent::TpduFailed { start, reason }]
    }

    /// Checks whether the group at `start` is complete and verifiable.
    fn try_complete(&mut self, start: u64, now: u64) -> Vec<RxEvent> {
        let Some(group) = self.groups.get_mut(&start) else {
            return Vec::new();
        };
        if group.reported || group.failed.is_some() {
            return Vec::new();
        }
        let (Some(digest), true) = (group.ed, group.tracker.is_complete()) else {
            return Vec::new();
        };
        let elements = group.elements;
        if group.inv.matches(digest) {
            group.reported = true;
            if self.obs_on {
                self.obs.counter("wsc.verify_pass", 1);
                self.obs
                    .observe("wsc.runs_per_tpdu", group.inv.absorbed_runs());
            }
            // Reassemble mode releases the staged chunks to the app now.
            let held = std::mem::take(&mut group.held);
            for (chunk, arrived) in held {
                let first = self.unwrap_csn(chunk.header.conn.sn);
                self.unstage(chunk.payload.len() as u64);
                let waited = now.saturating_sub(arrived);
                self.stats.holding_delay += waited;
                if self.obs_on {
                    self.obs.counter("transport.rx.holding_delay_ns", waited);
                    self.obs
                        .span_close(now, SpanId::new(Self::chunk_labels(&chunk), Stage::Hold));
                }
                self.place(first, &chunk.payload);
            }
            self.delivered.push(start);
            self.stats.tpdus_delivered += 1;
            if self.obs_on {
                self.obs.counter("transport.rx.tpdus_delivered", 1);
                self.obs.event(
                    now,
                    Event::GroupDelivered {
                        conn_id: self.params.conn_id,
                        start: start as u32,
                        bytes: (elements * self.params.elem_size as u64) as u32,
                    },
                );
                // Verdict reached: the verify span closes, and delivery is
                // marked with a zero-duration `deliver` span.
                let labels = self.group_labels(start);
                self.obs.span_close(now, SpanId::new(labels, Stage::Verify));
                let deliver = SpanId::new(labels, Stage::Deliver);
                self.obs.span_open(now, deliver);
                self.obs.span_close(now, deliver);
            }
            let mut events = vec![RxEvent::TpduDelivered { start, elements }];
            if self.closed {
                events.push(RxEvent::ConnectionClosed);
            }
            events
        } else {
            // Discard staged data; the retransmission will replace it.
            let held = std::mem::take(&mut group.held);
            for (chunk, _) in held {
                self.unstage(chunk.payload.len() as u64);
            }
            if self.obs_on {
                self.obs.counter("wsc.verify_fail", 1);
            }
            self.group_failure(start, FailureReason::EdMismatch)
        }
    }

    /// Expires every incomplete group (fragment timeout at end of run),
    /// reporting each as a reassembly error.
    pub fn expire_incomplete(&mut self) -> Vec<RxEvent> {
        let starts: Vec<u64> = self
            .groups
            .iter()
            .filter(|(_, g)| !g.reported)
            .map(|(&s, _)| s)
            .collect();
        let mut events = Vec::new();
        for s in starts {
            events.extend(self.group_failure(s, FailureReason::ReassemblyError));
        }
        events
    }

    /// Builds the current acknowledgment, including the precise missing
    /// element ranges so the sender can retransmit sub-chunks only.
    pub fn make_ack(&self) -> AckInfo {
        let prefix = self.verified_prefix();
        let mut sacks: Vec<u64> = self
            .delivered
            .iter()
            .copied()
            .filter(|&s| s >= prefix)
            .collect();
        sacks.sort_unstable();
        sacks.dedup();
        let mut gaps: Vec<(u64, u64)> = Vec::new();
        let mut need_ed: Vec<u64> = Vec::new();
        for (&start, g) in &self.groups {
            if g.reported && g.failed.is_none() {
                continue; // delivered
            }
            if g.failed.is_some() {
                // Verification failed: the whole TPDU must come again.
                let span = g.elements.max(g.tracker.covered());
                gaps.push((start, start + span.max(1)));
            } else {
                for (lo, hi) in g.tracker.missing() {
                    gaps.push((start + lo, start + hi));
                }
                if g.tracker.is_complete() && g.ed.is_none() {
                    need_ed.push(start);
                }
            }
        }
        gaps.sort_unstable();
        need_ed.sort_unstable();
        AckInfo {
            cumulative: prefix,
            sacks,
            gaps,
            need_ed,
        }
    }

    /// Starts of groups that failed verification and need retransmission.
    pub fn failed_starts(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .groups
            .iter()
            .filter(|(_, g)| g.failed.is_some())
            .map(|(&s, _)| s)
            .collect();
        v.sort_unstable();
        v
    }

    /// Clears the state of a failed or incomplete group so a retransmission
    /// (with identical identifiers, §3.3) can be verified afresh.
    pub fn reset_group(&mut self, start: u64) {
        if let Some(g) = self.groups.remove(&start) {
            // Release the claimed range so retransmitted data may land.
            self.claimed
                .subtract(start, start + g.elements.max(g.tracker.covered()));
            for (chunk, _) in &g.held {
                self.unstage(chunk.payload.len() as u64);
            }
        }
    }

    /// The verified WSC-2 code of a delivered TPDU, or `None` if the group
    /// at `start` was never delivered (missing, failed, or still pending).
    ///
    /// Delivered groups keep their invariant state, so the code a parallel
    /// worker folds into its delivery transcript is exactly the one the ED
    /// comparison accepted.
    pub fn delivered_code(&self, start: u64) -> Option<chunks_wsc::Wsc2> {
        self.groups
            .get(&start)
            .filter(|g| g.reported && g.failed.is_none())
            .map(|g| g.inv.code())
    }

    /// `(start, digest)` for every delivered TPDU, sorted by start — the
    /// per-connection verification transcript the differential harness
    /// compares across pipelines.
    pub fn delivered_digests(&self) -> Vec<(u64, [u8; 8])> {
        let mut v: Vec<(u64, [u8; 8])> = self
            .groups
            .iter()
            .filter(|(_, g)| g.reported && g.failed.is_none())
            .map(|(&s, g)| (s, g.inv.digest()))
            .collect();
        v.sort_unstable();
        v
    }

    /// Starts of delivered TPDUs, in delivery order.
    pub fn delivered_starts(&self) -> &[u64] {
        &self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Framer;
    use chunks_core::frag::split;
    use chunks_core::packet::pack;

    fn params() -> ConnectionParams {
        ConnectionParams {
            conn_id: 0xA,
            elem_size: 1,
            initial_csn: 100,
            tpdu_elements: 8,
        }
    }

    fn layout() -> InvariantLayout {
        InvariantLayout::with_data_symbols(4096)
    }

    fn rx(mode: DeliveryMode) -> Receiver {
        Receiver::new(mode, params(), layout(), 1 << 16)
    }

    fn framed(data: &[u8]) -> Vec<crate::frame::Tpdu> {
        Framer::new(params(), layout()).frame_simple(data, 0xF, false)
    }

    #[test]
    fn in_order_delivery_immediate() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh12345678");
        let mut delivered = 0;
        for t in &tpdus {
            for c in t.all_chunks() {
                for e in r.handle_chunk(c, 0) {
                    if matches!(e, RxEvent::TpduDelivered { .. }) {
                        delivered += 1;
                    }
                }
            }
        }
        assert_eq!(delivered, 2);
        assert_eq!(&r.app_data()[..16], b"abcdefgh12345678");
        // Immediate mode: exactly one touch per payload byte.
        assert_eq!(r.stats.data_touches, 16);
        assert_eq!(r.stats.peak_buffered_bytes, 0);
        assert_eq!(r.verified_prefix(), 16);
    }

    #[test]
    fn disordered_fragmented_delivery_immediate() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        // Fragment the single data chunk and deliver the pieces backwards,
        // ED chunk first.
        let t = &tpdus[0];
        let (a, rest) = split(&t.chunks[0], 3).unwrap();
        let (b, c) = split(&rest, 2).unwrap();
        let mut events = Vec::new();
        for chunk in [t.ed.clone(), c, b, a] {
            events.extend(r.handle_chunk(chunk, 0));
        }
        assert!(events.iter().any(|e| matches!(
            e,
            RxEvent::TpduDelivered {
                start: 0,
                elements: 8
            }
        )));
        assert_eq!(&r.app_data()[..8], b"abcdefgh");
        assert_eq!(r.stats.data_touches, 8, "still one touch per byte");
    }

    #[test]
    fn reassemble_mode_touches_twice() {
        let mut r = rx(DeliveryMode::Reassemble);
        let tpdus = framed(b"abcdefgh");
        for c in tpdus[0].all_chunks() {
            r.handle_chunk(c, 0);
        }
        assert_eq!(&r.app_data()[..8], b"abcdefgh");
        assert_eq!(r.stats.data_touches, 16, "buffer write + final copy");
        assert_eq!(r.stats.peak_buffered_bytes, 8);
        assert_eq!(r.stats.buffered_bytes, 0, "released on verification");
    }

    #[test]
    fn reorder_mode_in_order_is_single_touch() {
        let mut r = rx(DeliveryMode::Reorder);
        let tpdus = framed(b"abcdefgh");
        for c in tpdus[0].all_chunks() {
            r.handle_chunk(c, 0);
        }
        assert_eq!(r.stats.data_touches, 8);
        assert_eq!(&r.app_data()[..8], b"abcdefgh");
    }

    #[test]
    fn reorder_mode_buffers_out_of_order() {
        let mut r = rx(DeliveryMode::Reorder);
        let tpdus = framed(b"abcdefgh");
        let t = &tpdus[0];
        let (a, b) = split(&t.chunks[0], 4).unwrap();
        r.handle_chunk(b, 10); // out of order: staged
        assert_eq!(r.stats.buffered_bytes, 4);
        r.handle_chunk(a, 20); // fills the gap, drains the queue
        r.handle_chunk(t.ed.clone(), 30);
        assert_eq!(&r.app_data()[..8], b"abcdefgh");
        assert_eq!(r.stats.buffered_bytes, 0);
        assert_eq!(r.stats.data_touches, 8 + 4, "staged bytes touched twice");
        assert_eq!(r.stats.holding_delay, 10, "tail waited 20 - 10");
    }

    #[test]
    fn payload_corruption_rejected_by_ed() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        let t = &tpdus[0];
        let mut bad = t.chunks[0].clone();
        let mut raw = bad.payload.to_vec();
        raw[2] ^= 0x10;
        bad.payload = raw.into();
        let mut events = r.handle_chunk(bad, 0);
        events.extend(r.handle_chunk(t.ed.clone(), 0));
        assert!(events.iter().any(|e| matches!(
            e,
            RxEvent::TpduFailed {
                reason: FailureReason::EdMismatch,
                ..
            }
        )));
    }

    #[test]
    fn duplicate_chunks_rejected_before_checksum() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        let t = &tpdus[0];
        let mut events = r.handle_chunk(t.chunks[0].clone(), 0);
        events.extend(r.handle_chunk(t.chunks[0].clone(), 0));
        events.extend(r.handle_chunk(t.ed.clone(), 0));
        assert_eq!(r.stats.duplicate_chunks, 1);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, RxEvent::TpduDelivered { .. })),
            "duplicate must not corrupt the incremental checksum"
        );
    }

    #[test]
    fn retransmission_after_failure_succeeds() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        let t = &tpdus[0];
        let mut bad = t.chunks[0].clone();
        let mut raw = bad.payload.to_vec();
        raw[0] ^= 1;
        bad.payload = raw.into();
        r.handle_chunk(bad, 0);
        r.handle_chunk(t.ed.clone(), 0);
        assert_eq!(r.failed_starts(), vec![0]);
        // Retransmit with identical identifiers after resetting the group.
        r.reset_group(0);
        let mut events = Vec::new();
        for c in t.all_chunks() {
            events.extend(r.handle_chunk(c, 1));
        }
        assert!(events
            .iter()
            .any(|e| matches!(e, RxEvent::TpduDelivered { .. })));
        assert_eq!(&r.app_data()[..8], b"abcdefgh");
    }

    #[test]
    fn packets_roundtrip_through_receiver() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh12345678");
        let chunks: Vec<Chunk> = tpdus.iter().flat_map(|t| t.all_chunks()).collect();
        let packets = pack(chunks, 64).unwrap();
        let mut delivered = 0;
        for p in &packets {
            for e in r.handle_packet(p, 0) {
                if matches!(e, RxEvent::TpduDelivered { .. }) {
                    delivered += 1;
                }
            }
        }
        assert_eq!(delivered, 2);
        assert_eq!(&r.app_data()[..16], b"abcdefgh12345678");
    }

    #[test]
    fn ack_reflects_verified_prefix_and_sacks() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(&[7u8; 24]); // three TPDUs of 8
                                        // Deliver TPDU 0 and TPDU 2, skip TPDU 1.
        for t in [&tpdus[0], &tpdus[2]] {
            for c in t.all_chunks() {
                r.handle_chunk(c, 0);
            }
        }
        let ack = r.make_ack();
        assert_eq!(ack.cumulative, 8);
        assert_eq!(ack.sacks, vec![16]);
    }

    #[test]
    fn csn_corruption_is_cross_group_consistency_failure() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(&[7u8; 16]); // two TPDUs of 8
                                        // Deliver TPDU 0 intact.
        for c in tpdus[0].all_chunks() {
            r.handle_chunk(c, 0);
        }
        // TPDU 1's chunk with corrupted C.SN pointing into TPDU 0's range
        // (misaligned, so it is not mistaken for a benign duplicate).
        let mut bad = tpdus[1].chunks[0].clone();
        bad.header.conn.sn = bad.header.conn.sn.wrapping_sub(3);
        let events = r.handle_chunk(bad, 0);
        assert!(events.iter().any(|e| matches!(
            e,
            RxEvent::TpduFailed {
                reason: FailureReason::Consistency,
                ..
            }
        )));
    }

    #[test]
    fn xsn_corruption_is_consistency_failure() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        let t = &tpdus[0];
        let (a, mut b) = split(&t.chunks[0], 4).unwrap();
        b.header.ext.sn = b.header.ext.sn.wrapping_add(3);
        let mut events = r.handle_chunk(a, 0);
        events.extend(r.handle_chunk(b, 0));
        assert!(events.iter().any(|e| matches!(
            e,
            RxEvent::TpduFailed {
                reason: FailureReason::Consistency,
                ..
            }
        )));
    }

    #[test]
    fn tsn_corruption_is_reassembly_error() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        let t = &tpdus[0];
        let (a, mut b) = split(&t.chunks[0], 4).unwrap();
        // Corrupt T.SN: the chunk claims a different in-TPDU position, so
        // it lands in a ghost group that never completes.
        b.header.tpdu.sn = b.header.tpdu.sn.wrapping_add(2);
        r.handle_chunk(a, 0);
        r.handle_chunk(b, 0);
        r.handle_chunk(t.ed.clone(), 0);
        let events = r.expire_incomplete();
        assert!(events.iter().any(|e| matches!(
            e,
            RxEvent::TpduFailed {
                reason: FailureReason::ReassemblyError,
                ..
            }
        )));
    }

    #[test]
    fn tid_corruption_is_ed_mismatch() {
        // The explicit T.ID is protected by the invariant; grouping does not
        // use it, so the TPDU completes and verification catches it.
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        let t = &tpdus[0];
        let mut bad = t.chunks[0].clone();
        bad.header.tpdu.id ^= 0x55;
        let mut events = r.handle_chunk(bad, 0);
        events.extend(r.handle_chunk(t.ed.clone(), 0));
        assert!(events.iter().any(|e| matches!(
            e,
            RxEvent::TpduFailed {
                reason: FailureReason::EdMismatch,
                ..
            }
        )));
    }

    #[test]
    fn connection_close_event() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = Framer::new(params(), layout()).frame_simple(b"abcdefgh", 0xF, true);
        let mut events = Vec::new();
        for c in tpdus[0].all_chunks() {
            events.extend(r.handle_chunk(c, 0));
        }
        assert!(events.contains(&RxEvent::ConnectionClosed));
        assert!(r.is_closed());
    }

    #[test]
    fn wrong_elem_size_rejected() {
        let mut r = rx(DeliveryMode::Immediate);
        let tpdus = framed(b"abcdefgh");
        let mut bad = tpdus[0].chunks[0].clone();
        bad.header.size = 2;
        bad.header.len = 4;
        let events = r.handle_chunk(bad, 0);
        assert!(events.iter().any(|e| matches!(
            e,
            RxEvent::TpduFailed {
                reason: FailureReason::BadChunk,
                ..
            }
        )));
    }
}
