//! Order-free parallel receive pipeline.
//!
//! The paper's data-labelling argument (§3.3) is that self-describing chunks
//! can be processed *the moment they arrive*, in *any* order — which means
//! they can also be processed *anywhere*: a chunk's labels carry everything a
//! processing unit needs, so arriving chunks can be fanned out across
//! parallel workers with no shared reassembly state. This module builds that
//! pipeline and keeps it provably equivalent to the serial
//! [`ConnectionDemux`](crate::mux::ConnectionDemux) path:
//!
//! * **Dispatch** — [`ParallelReceiver::ingest`] walks a packet's chunk
//!   spans (validated exactly like `unpack`: one malformed chunk rejects the
//!   whole packet), peeks only the fixed 32-byte header of each span, and
//!   hands the span to a worker chosen by hashing the chunk's **connection
//!   label** (`C.ID`). The span is a zero-copy [`bytes::Bytes`] slice of the
//!   arriving packet; payload bytes are not touched at this stage.
//! * **Workers** — each worker owns the full [`Receiver`] state for the
//!   connections hashed to it and processes its work queue in FIFO order.
//!   Because *every* chunk of a connection lands on the same worker, the
//!   per-connection arrival order is preserved, and each receiver behaves
//!   bit-identically to the serial path — for any worker count and any
//!   cross-worker interleaving. That is the equivalence argument the
//!   differential harness (`tests/parallel_differential.rs`) checks
//!   mechanically.
//! * **Merge** — [`ParallelReceiver::finish`] moves each worker's receivers
//!   out (no payload byte is ever buffered twice), folds the per-worker
//!   delivery transcripts ([`Wsc2Stream::fold`] — parities are sums, so the
//!   fold is order-independent), and interleaves control events back into
//!   global arrival order using the dispatch stamps.
//!
//! Two engines run the same worker code:
//!
//! * [`Engine::Threads`] — one OS thread per worker behind a bounded SPSC
//!   work queue; the real pipeline, used for throughput measurements.
//! * [`Engine::Virtual`] — single-threaded, with a deterministic
//!   [`Schedule`] choosing which worker's queue advances next. Adversarial
//!   schedules (reverse, seeded-random, starvation) let tests *prove* that
//!   worker interleaving cannot change any observable outcome.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use bytes::Bytes;
use chunks_core::label::ChunkType;
use chunks_core::packet::{spans, validate, Packet};
use chunks_core::wire::{decode_chunk_at, decode_chunk_observed, labels_of};
use chunks_obs::{Event, HotCounter, Labels, ObsSink, ShardSink, SpanId, Stage};
use chunks_vreasm::OverlapPolicy;
use chunks_wsc::{InvariantLayout, Wsc2Stream};

use crate::ack::AckInfo;
use crate::budget::ResourceBudget;
use crate::conn::{ConnectionParams, Signal};
use crate::receiver::{DeliveryMode, Receiver, RxEvent};
use crate::table::{ConnSet, ConnTable, TableConfig};

/// Depth of each worker's bounded work queue (threads engine). Ingest blocks
/// when a queue fills — backpressure instead of unbounded buffering.
const WORK_QUEUE_DEPTH: usize = 1024;

/// Chooses the worker that owns connection `conn_id`.
///
/// Fibonacci multiplicative hashing: sequential connection ids (the common
/// allocation pattern) spread evenly across workers instead of clumping the
/// way `id % workers` would under strided id assignment.
pub fn shard_of(conn_id: u32, workers: usize) -> usize {
    assert!(workers > 0, "at least one worker");
    (((conn_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % workers as u64) as usize
}

/// How the pipeline executes its workers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Engine {
    /// One OS thread per worker, bounded SPSC queues.
    Threads,
    /// Single-threaded deterministic simulation: queued work is drained
    /// under the given worker-interleaving schedule. Same worker code, fully
    /// reproducible — the engine the equivalence proofs run on.
    Virtual(Schedule),
}

/// Deterministic worker-interleaving schedules for [`Engine::Virtual`].
///
/// A schedule only decides *which worker's queue advances next*; it can
/// never reorder one worker's queue. The schedule tests assert that every
/// variant below produces identical observable outcomes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Schedule {
    /// Round-robin, one work item per turn.
    Fair,
    /// Round-robin walking worker indices downward.
    Reverse,
    /// Seeded LCG picks a random non-empty worker each step.
    Seeded(u64),
    /// Cycles through an explicit worker ordering (indices may repeat —
    /// repeating a worker gives it longer bursts).
    Rotation(Vec<usize>),
    /// The named worker is starved: it runs only once every other worker's
    /// queue is empty.
    Starve(usize),
}

/// Everything needed to register one connection with the pipeline.
#[derive(Clone, Debug)]
pub struct ConnSpec {
    /// Connection parameters (id, element size, initial `C.SN`).
    pub params: ConnectionParams,
    /// Invariant layout shared with the sender.
    pub layout: InvariantLayout,
    /// Receive-side delivery strategy.
    pub mode: DeliveryMode,
    /// Application address space capacity, in elements.
    pub capacity_elements: u64,
    /// What the connection's receiver does when a fragment overlaps
    /// already-held positions with differing bytes.
    pub policy: OverlapPolicy,
    /// Memory budget for the connection's receiver. Give every spec a clone
    /// of a [`ResourceBudget::with_global`] budget to cap the whole
    /// pipeline's held bytes across workers.
    pub budget: ResourceBudget,
}

impl ConnSpec {
    /// Spec with the default overlap policy and an unlimited budget.
    pub fn new(
        params: ConnectionParams,
        layout: InvariantLayout,
        mode: DeliveryMode,
        capacity_elements: u64,
    ) -> Self {
        ConnSpec {
            params,
            layout,
            mode,
            capacity_elements,
            policy: OverlapPolicy::default(),
            budget: ResourceBudget::default(),
        }
    }

    /// Sets the overlap policy.
    pub fn with_policy(mut self, policy: OverlapPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the resource budget.
    pub fn with_budget(mut self, budget: ResourceBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// A control-plane event observed at dispatch, stamped with its global
/// arrival order so the merge stage can interleave events from all workers
/// back into one deterministic sequence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ControlEvent {
    /// Global dispatch order (one stamp per chunk, across all packets).
    pub stamp: u64,
    /// What arrived.
    pub kind: ControlKind,
}

/// The control-plane event kinds the dispatcher surfaces directly (data and
/// ED chunks instead flow to workers and surface as [`RxEvent`]s).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ControlKind {
    /// An acknowledgment for a connection we send on.
    Ack {
        /// The acknowledged connection.
        conn_id: u32,
        /// The acknowledgment.
        ack: AckInfo,
    },
    /// A connection signal.
    Signal(Signal),
    /// A data/ED chunk referenced a connection no receiver is registered
    /// for.
    UnknownConnection {
        /// The unknown `C.ID`.
        conn_id: u32,
    },
}

/// Dispatch-stage counters.
///
/// Like [`ReliabilityStats`](crate::session::ReliabilityStats), the field
/// names track the `chunks-obs` metrics catalogue (`transport.parallel.*`);
/// [`Self::as_metrics`] yields the catalogued pairs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DispatchStats {
    /// Packets ingested.
    pub packets: u64,
    /// Packets rejected whole (malformed chunk sequence), mirroring the
    /// serial `unpack` contract.
    pub bad_packets: u64,
    /// Chunks routed, by wire type byte — same accounting as
    /// [`ConnectionDemux::routed`](crate::mux::ConnectionDemux).
    pub routed: [u64; 5],
    /// Data/ED spans handed to workers.
    pub chunks_dispatched: u64,
    /// Worker-side decode failures (spans are pre-validated, so this stays
    /// zero unless memory is corrupted between stages).
    pub decode_errors: u64,
}

impl DispatchStats {
    /// The counters as `(catalogue name, value)` pairs, named exactly as
    /// the `chunks-obs` registry exports them. `routed` and `decode_errors`
    /// have no registry twin (the former is a per-TYPE array, the latter is
    /// a cannot-happen guard).
    pub fn as_metrics(&self) -> [(&'static str, u64); 3] {
        [
            ("transport.parallel.packets", self.packets),
            ("transport.parallel.bad_packets", self.bad_packets),
            (
                "transport.parallel.chunks_dispatched",
                self.chunks_dispatched,
            ),
        ]
    }
}

/// Wall-clock spent in each pipeline stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Time in [`ParallelReceiver::ingest`]: span validation + routing.
    pub dispatch_ns: u64,
    /// Busiest single worker — the pipeline's critical path.
    pub process_max_ns: u64,
    /// Total worker busy time across all workers.
    pub process_total_ns: u64,
    /// Time in the merge stage of [`ParallelReceiver::finish`].
    pub merge_ns: u64,
}

/// Per-connection result assembled by the merge stage. The receiver (and
/// with it the application address space) is *moved* out of its worker —
/// delivered payload bytes are never copied again.
#[derive(Debug)]
pub struct ConnReport {
    /// The worker that owned this connection.
    pub worker: usize,
    /// Every [`RxEvent`] the connection's receiver emitted, in
    /// per-connection arrival order.
    pub events: Vec<RxEvent>,
    /// The connection's final acknowledgment state.
    pub ack: AckInfo,
    /// The receiver itself, final state intact (application data,
    /// statistics, delivered digests).
    pub receiver: Receiver,
}

/// The merged output of the whole pipeline.
#[derive(Debug)]
pub struct ParallelOutcome {
    /// Per-connection reports, keyed by `C.ID`.
    pub conns: BTreeMap<u32, ConnReport>,
    /// Control events in global arrival (stamp) order.
    pub control: Vec<ControlEvent>,
    /// Digest of the session delivery transcript: the XOR-fold of every
    /// delivered TPDU's verified WSC-2 code, across all workers. Equal for
    /// any worker count and schedule iff the pipelines delivered the same
    /// verified TPDUs.
    pub transcript_digest: [u8; 8],
    /// Dispatch-stage counters.
    pub dispatch: DispatchStats,
    /// Per-stage wall-clock.
    pub timings: StageTimings,
    /// Data/ED chunks processed per worker (shard balance).
    pub worker_chunks: Vec<u64>,
}

/// One unit of work on a worker queue.
enum Work {
    /// A data/ED chunk span, zero-copy slice of the arriving packet.
    Chunk { raw: Bytes, now: u64 },
    /// Clear a failed/incomplete group so a retransmission verifies afresh.
    Reset { conn_id: u32, start: u64 },
    /// Pre-size every owned receiver (and the worker's event buffers) for
    /// an expected load, so the steady state that follows allocates nothing.
    Reserve { tpdus: usize, fragments: usize },
    /// Admit a connection mid-stream: the owning worker re-arms a pooled
    /// shell (or builds a fresh receiver) in its connection table. Ordered
    /// with the connection's chunks — it travels the same FIFO.
    Admit { spec: ConnSpec, now: u64 },
    /// Retire a connection mid-stream: the owning worker quiesces its
    /// receiver into the shell pool.
    Retire { conn_id: u32, now: u64 },
    /// Barrier: reply with per-connection snapshots (threads engine).
    Sync(mpsc::Sender<Vec<SyncSnapshot>>),
}

/// Mid-stream state of one connection, taken at a [`ParallelReceiver::sync`]
/// barrier — everything a closed-loop sender needs to keep the transfer
/// moving (acknowledgment to return, failed groups to clear and repair).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SyncSnapshot {
    /// The connection.
    pub conn_id: u32,
    /// Its current acknowledgment.
    pub ack: AckInfo,
    /// Starts of groups that failed verification and await a reset +
    /// retransmission.
    pub failed: Vec<u64>,
}

/// A worker's whole state: the receivers it owns plus its slice of the
/// eventual merge inputs.
struct Shard {
    index: usize,
    /// The worker's slice of the connection table: open-addressed, pooled
    /// shells, same lifecycle as the serial demux's table.
    receivers: ConnTable,
    events: HashMap<u32, Vec<RxEvent>>,
    /// XOR-fold of verified TPDU codes delivered by this worker.
    transcript: Wsc2Stream,
    chunks: u64,
    decode_errors: u64,
    busy_ns: u64,
    /// Observability sink (no-op by default). When the pipeline's sink
    /// exposes per-worker shard blocks ([`ObsSink::worker_shard`]), this is
    /// the worker's private [`ShardSink`] facade: counters are plain
    /// owner-writes, folded into the root at flush barriers.
    obs: Arc<dyn ObsSink>,
    /// Cached `obs.enabled() && obs.verbose()`: gates the observed decode
    /// path, whose per-chunk trace events materialise payload copies.
    obs_verbose: bool,
}

impl Shard {
    fn new(index: usize, obs: Arc<dyn ObsSink>) -> Self {
        let obs = ShardSink::wrap(obs);
        let obs_verbose = obs.enabled() && obs.verbose();
        let mut receivers = ConnTable::new(TableConfig::default());
        receivers.set_obs(obs.clone());
        Shard {
            index,
            receivers,
            events: HashMap::new(),
            transcript: Wsc2Stream::new(),
            chunks: 0,
            decode_errors: 0,
            busy_ns: 0,
            obs,
            obs_verbose,
        }
    }

    /// Processes one work item. Identical code under both engines — the
    /// engines differ only in *when* this runs, never in what it does.
    fn process(&mut self, work: Work) {
        let started = Instant::now();
        match work {
            Work::Chunk { raw, now } => {
                // The zero-copy decode slices the chunk's payload straight
                // out of the dispatched span (itself a slice of the arriving
                // packet); only the observed decode still materialises a
                // copy, in exchange for its per-chunk trace events — so a
                // non-verbose (always-on) sink keeps the zero-copy path.
                let decoded = if self.obs_verbose {
                    decode_chunk_observed(&raw, now, &*self.obs)
                } else {
                    decode_chunk_at(&raw, 0)
                };
                let chunk = match decoded {
                    Ok((c, _)) => c,
                    Err(_) => {
                        self.decode_errors += 1;
                        return;
                    }
                };
                let conn_id = chunk.header.conn.id;
                let Some(rx) = self.receivers.lookup(conn_id, now) else {
                    // Dispatch only routes registered connections here.
                    self.decode_errors += 1;
                    return;
                };
                self.chunks += 1;
                // Events append straight into the connection's merge buffer;
                // the freshly-appended tail is then scanned for deliveries
                // to fold into the worker transcript. No per-chunk Vec.
                let events = self.events.entry(conn_id).or_default();
                let before = events.len();
                rx.handle_chunk_into(chunk, now, events);
                for event in &events[before..] {
                    if let RxEvent::TpduDelivered { start, .. } = event {
                        if let Some(code) = rx.delivered_code(*start) {
                            self.transcript.fold_code(&code);
                        }
                    }
                }
            }
            Work::Reset { conn_id, start } => {
                if let Some(rx) = self.receivers.get_mut(conn_id) {
                    rx.reset_group(start);
                }
            }
            Work::Reserve { tpdus, fragments } => {
                for (id, rx) in self.receivers.iter_mut() {
                    rx.reserve(tpdus, fragments);
                    // Deliveries dominate the event stream: one TpduDelivered
                    // per TPDU plus occasional control events; 2× covers the
                    // measurement windows the alloc gate drives.
                    self.events.entry(id).or_default().reserve(tpdus * 2);
                }
            }
            Work::Admit { spec, now } => {
                let sink = self.obs.clone();
                self.receivers.admit(
                    spec.params,
                    now,
                    || {
                        let mut rx = Receiver::new(
                            spec.mode,
                            spec.params,
                            spec.layout,
                            spec.capacity_elements,
                        );
                        rx.set_policy(spec.policy);
                        rx.set_budget(spec.budget.clone());
                        rx.set_obs(sink);
                        rx
                    },
                    |rx| {
                        // A pooled shell keeps mode/layout/capacity; policy
                        // and budget are per-connection, so re-apply them
                        // (neither setter allocates).
                        rx.set_policy(spec.policy);
                        rx.set_budget(spec.budget.clone());
                    },
                );
            }
            Work::Retire { conn_id, now } => {
                self.receivers.retire(conn_id, now);
            }
            Work::Sync(reply) => {
                let snapshots = self.snapshots();
                // The barrier caller may have hung up; nothing to do then.
                let _ = reply.send(snapshots);
            }
        }
        self.busy_ns += started.elapsed().as_nanos() as u64;
    }

    fn snapshots(&self) -> Vec<SyncSnapshot> {
        let mut v: Vec<SyncSnapshot> = self
            .receivers
            .iter()
            .map(|(id, rx)| SyncSnapshot {
                conn_id: id,
                ack: rx.make_ack(),
                failed: rx.failed_starts(),
            })
            .collect();
        v.sort_unstable_by_key(|s| s.conn_id);
        v
    }
}

/// Deterministic worker picker for [`Engine::Virtual`].
struct Picker {
    schedule: Schedule,
    cursor: usize,
    lcg: u64,
    rotation_at: usize,
}

impl Picker {
    fn new(schedule: Schedule) -> Self {
        let lcg = match schedule {
            Schedule::Seeded(seed) => seed ^ 0x9E37_79B9_7F4A_7C15,
            _ => 0,
        };
        Picker {
            schedule,
            cursor: 0,
            lcg,
            rotation_at: 0,
        }
    }

    /// Picks the next worker with pending work, or `None` when all queues
    /// are empty.
    ///
    /// Runs once per drained work item, so every schedule selects by
    /// positional scan: no candidate list is materialised. Each arm picks
    /// exactly the worker the old collect-then-index implementation picked
    /// (the index-`k` entry of the ascending non-empty list is the `k`-th
    /// non-empty queue in index order).
    fn next(&mut self, queues: &[VecDeque<Work>]) -> Option<usize> {
        let n = queues.len();
        let nonempty = queues.iter().filter(|q| !q.is_empty()).count();
        if nonempty == 0 {
            return None;
        }
        let kth_nonempty = |k: usize, skip: Option<usize>| -> usize {
            queues
                .iter()
                .enumerate()
                .filter(|&(i, q)| Some(i) != skip && !q.is_empty())
                .nth(k)
                .map(|(i, _)| i)
                .expect("k-th non-empty queue exists")
        };
        let pick = match &self.schedule {
            Schedule::Fair => {
                let chosen = (0..n)
                    .map(|k| (self.cursor + k) % n)
                    .find(|&i| !queues[i].is_empty())
                    .expect("some queue is non-empty");
                self.cursor = (chosen + 1) % n;
                chosen
            }
            Schedule::Reverse => {
                let chosen = (0..n)
                    .map(|k| (self.cursor + n - k % n) % n)
                    .find(|&i| !queues[i].is_empty())
                    .expect("some queue is non-empty");
                self.cursor = (chosen + n - 1) % n;
                chosen
            }
            Schedule::Seeded(_) => {
                self.lcg = self
                    .lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                kth_nonempty(((self.lcg >> 33) as usize) % nonempty, None)
            }
            Schedule::Rotation(order) => {
                assert!(!order.is_empty(), "rotation order must name a worker");
                let mut chosen = None;
                for _ in 0..order.len() {
                    let cand = order[self.rotation_at % order.len()];
                    self.rotation_at += 1;
                    assert!(cand < n, "rotation names worker {cand} of {n}");
                    if !queues[cand].is_empty() {
                        chosen = Some(cand);
                        break;
                    }
                }
                // Every worker in the order is empty but some queue is not:
                // the order must cover all workers with work, so fall back
                // to the first non-empty to guarantee progress.
                chosen.unwrap_or_else(|| kth_nonempty(0, None))
            }
            Schedule::Starve(victim) => {
                let others = if queues[*victim].is_empty() {
                    nonempty
                } else {
                    nonempty - 1
                };
                if others == 0 {
                    *victim
                } else {
                    let chosen = kth_nonempty(self.cursor % others, Some(*victim));
                    self.cursor += 1;
                    chosen
                }
            }
        };
        Some(pick)
    }
}

/// Engine-specific runtime state.
enum Runtime {
    Threads {
        senders: Vec<mpsc::SyncSender<Work>>,
        handles: Vec<JoinHandle<Shard>>,
    },
    Virtual {
        picker: Picker,
        shards: Vec<Shard>,
        queues: Vec<VecDeque<Work>>,
    },
}

/// The shard-per-worker parallel receive pipeline. See the module docs for
/// the three stages and the equivalence argument.
pub struct ParallelReceiver {
    workers: usize,
    runtime: Runtime,
    dispatch: DispatchStats,
    dispatch_ns: u64,
    /// Global chunk arrival counter; stamps control events so the merge can
    /// restore one deterministic order.
    stamp: u64,
    control: Vec<ControlEvent>,
    /// Dispatcher-side membership: which `C.ID`s currently route to a
    /// worker. Open-addressed, O(1) per chunk — at a million connections
    /// the `Vec::contains` scan it replaced was the whole dispatch cost.
    registered: ConnSet,
    /// Observability sink (no-op by default).
    obs: Arc<dyn ObsSink>,
    /// Cached `obs.enabled()` so the disabled path costs one branch.
    obs_on: bool,
    /// Cached `obs.enabled() && obs.verbose()`: gates per-chunk dispatch
    /// events and merge-queue spans, which an always-on sink declines.
    obs_verbose: bool,
    /// Last `now` seen by [`Self::ingest`], used to stamp merge-stage events
    /// (the merge has no clock of its own).
    last_now: u64,
    /// Labels of data/ED chunks with an open `merge-queue` span (dispatched
    /// but not yet folded). Populated only when `obs_on`.
    merge_open: Vec<Labels>,
    /// Pre-resolved per-packet counter handle (label→cell looked up once at
    /// construction, owner-writes stores per packet).
    hot_packets: HotCounter,
    /// Pre-resolved per-chunk counter handle for dispatched data/ED chunks.
    hot_chunks_dispatched: HotCounter,
}

impl std::fmt::Debug for ParallelReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelReceiver")
            .field("workers", &self.workers)
            .field("dispatch", &self.dispatch)
            .finish_non_exhaustive()
    }
}

impl ParallelReceiver {
    /// Builds the pipeline with `workers` workers and registers every
    /// connection in `conns`, each on the worker [`shard_of`] names.
    pub fn new(workers: usize, engine: Engine, conns: Vec<ConnSpec>) -> Self {
        Self::new_with_obs(workers, engine, conns, chunks_obs::null())
    }

    /// Like [`Self::new`], with an observability sink shared by the
    /// dispatcher, every worker, and every per-connection receiver. The sink
    /// must be chosen at construction time because the threads engine spawns
    /// its workers here.
    pub fn new_with_obs(
        workers: usize,
        engine: Engine,
        conns: Vec<ConnSpec>,
        sink: Arc<dyn ObsSink>,
    ) -> Self {
        assert!(workers > 0, "at least one worker");
        // The dispatcher records through its own shard facade as well (the
        // wrap is the identity for sinks without shard blocks), so per-packet
        // dispatch counters are plain owner-writes just like worker counters.
        let sink = ShardSink::wrap(sink);
        let obs_on = sink.enabled();
        let obs_verbose = obs_on && sink.verbose();
        let mut shards: Vec<Shard> = (0..workers).map(|i| Shard::new(i, sink.clone())).collect();
        let mut registered = ConnSet::with_capacity(conns.len());
        for spec in conns {
            let conn_id = spec.params.conn_id;
            registered.insert(conn_id);
            let mut rx = Receiver::new(spec.mode, spec.params, spec.layout, spec.capacity_elements);
            rx.set_policy(spec.policy);
            rx.set_budget(spec.budget);
            let shard = &mut shards[shard_of(conn_id, workers)];
            // The receiver records through its owning worker's shard facade,
            // so its hot-path counters are plain owner-writes too.
            rx.set_obs(shard.obs.clone());
            shard.receivers.insert(conn_id, rx, 0);
        }
        let runtime = match engine {
            Engine::Threads => {
                let mut senders = Vec::with_capacity(workers);
                let mut handles = Vec::with_capacity(workers);
                for mut shard in shards {
                    let (tx, rx) = mpsc::sync_channel::<Work>(WORK_QUEUE_DEPTH);
                    senders.push(tx);
                    handles.push(std::thread::spawn(move || {
                        while let Ok(work) = rx.recv() {
                            shard.process(work);
                        }
                        shard
                    }));
                }
                Runtime::Threads { senders, handles }
            }
            Engine::Virtual(schedule) => Runtime::Virtual {
                picker: Picker::new(schedule),
                shards,
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
            },
        };
        let hot_packets = sink.hot_counter("transport.parallel.packets");
        let hot_chunks_dispatched = sink.hot_counter("transport.parallel.chunks_dispatched");
        ParallelReceiver {
            workers,
            runtime,
            dispatch: DispatchStats::default(),
            dispatch_ns: 0,
            stamp: 0,
            control: Vec::new(),
            registered,
            obs: sink,
            obs_on,
            obs_verbose,
            last_now: 0,
            merge_open: Vec::new(),
            hot_packets,
            hot_chunks_dispatched,
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker that owns `conn_id`.
    pub fn worker_of(&self, conn_id: u32) -> usize {
        shard_of(conn_id, self.workers)
    }

    /// Ingests one arriving packet at time `now`: validates the chunk
    /// sequence exactly like the serial `unpack` (a single malformed chunk
    /// rejects the whole packet), then routes each span.
    pub fn ingest(&mut self, packet: &Packet, now: u64) {
        let started = Instant::now();
        self.ingest_inner(packet, now);
        if self.obs_on {
            self.obs.clock_advance(now);
        }
        self.dispatch_ns += started.elapsed().as_nanos() as u64;
    }

    /// Ingests a batch of packets arriving at the same virtual time. The
    /// dispatch clock is read once per batch, so per-packet ingest overhead
    /// amortises across the batch.
    pub fn ingest_batch(&mut self, packets: &[Packet], now: u64) {
        let started = Instant::now();
        for packet in packets {
            self.ingest_inner(packet, now);
        }
        // The whole batch arrived at one virtual instant, so the sink's
        // shared clock advances once per batch — not one fetch_max RMW
        // per packet on the dispatch hot path.
        if self.obs_on && !packets.is_empty() {
            self.obs.clock_advance(now);
        }
        self.dispatch_ns += started.elapsed().as_nanos() as u64;
    }

    /// Pre-sizes every worker's receivers and event buffers for an expected
    /// load of `tpdus` TPDU groups and `fragments` tracked fragment runs, so
    /// the steady state that follows stays allocation-free. Travels the work
    /// queues like any other item, so it is ordered with the data.
    pub fn reserve(&mut self, tpdus: usize, fragments: usize) {
        for worker in 0..self.workers {
            self.send(worker, Work::Reserve { tpdus, fragments });
        }
    }

    fn ingest_inner(&mut self, packet: &Packet, now: u64) {
        self.last_now = now;
        self.dispatch.packets += 1;
        if self.obs_on {
            self.hot_packets.add(&*self.obs, 1);
        }
        // One allocation-free validation scan, then a streaming span walk:
        // the span list is never materialised.
        if validate(packet).is_err() {
            self.dispatch.bad_packets += 1;
            if self.obs_on {
                self.obs.counter("transport.parallel.bad_packets", 1);
            }
            return;
        }
        for (at, end) in spans(packet) {
            // The validation scan already vetted this header.
            let Ok(header) = chunks_core::wire::decode_header(&packet.bytes[at..]) else {
                continue;
            };
            let stamp = self.stamp;
            self.stamp += 1;
            self.dispatch.routed[header.ty.to_u8() as usize] += 1;
            match header.ty {
                ChunkType::Ack => {
                    if let Ok((chunk, _)) = decode_chunk_at(&packet.bytes, at) {
                        if let Ok(ack) = AckInfo::from_chunk(&chunk) {
                            self.control.push(ControlEvent {
                                stamp,
                                kind: ControlKind::Ack {
                                    conn_id: chunk.header.conn.id,
                                    ack,
                                },
                            });
                        }
                    }
                }
                ChunkType::Signal => {
                    if let Ok((chunk, _)) = decode_chunk_at(&packet.bytes, at) {
                        if let Ok(s) = Signal::from_chunk(&chunk) {
                            self.control.push(ControlEvent {
                                stamp,
                                kind: ControlKind::Signal(s),
                            });
                        }
                    }
                }
                ChunkType::Data | ChunkType::ErrorDetection => {
                    let conn_id = header.conn.id;
                    if self.registered.contains(conn_id) {
                        self.dispatch.chunks_dispatched += 1;
                        let worker = shard_of(conn_id, self.workers);
                        if self.obs_on {
                            self.hot_chunks_dispatched.add(&*self.obs, 1);
                        }
                        if self.obs_verbose {
                            let labels = labels_of(&header);
                            self.obs.event(
                                now,
                                Event::ShardDispatched {
                                    labels,
                                    worker: worker as u32,
                                },
                            );
                            // The chunk now sits between dispatch and merge:
                            // open its merge-queue span, closed at `finish`.
                            self.obs
                                .span_open(now, SpanId::new(labels, Stage::MergeQueue));
                            self.merge_open.push(labels);
                        }
                        let raw = packet.bytes.slice(at..end);
                        self.send(worker, Work::Chunk { raw, now });
                    } else {
                        if self.obs_on {
                            self.obs.counter("transport.parallel.unknown_connection", 1);
                        }
                        self.control.push(ControlEvent {
                            stamp,
                            kind: ControlKind::UnknownConnection { conn_id },
                        });
                    }
                }
                ChunkType::Padding => {}
            }
        }
    }

    /// Admits a connection mid-stream: registers it with the dispatcher and
    /// queues the admission on the worker [`shard_of`] names. The worker
    /// re-arms a pooled shell when one is free, so steady-state churn never
    /// touches the allocator. Ordered with the connection's chunks: chunks
    /// dispatched after this call find the receiver live.
    pub fn admit(&mut self, spec: ConnSpec, now: u64) {
        let conn_id = spec.params.conn_id;
        self.registered.insert(conn_id);
        let worker = shard_of(conn_id, self.workers);
        self.send(worker, Work::Admit { spec, now });
    }

    /// Retires a connection mid-stream: deregisters it from the dispatcher
    /// (subsequent chunks surface as `UnknownConnection` control events) and
    /// queues the retirement; the owning worker quiesces the receiver into
    /// its shell pool. Ordered with the connection's chunks.
    pub fn retire(&mut self, conn_id: u32, now: u64) {
        if self.registered.remove(conn_id) {
            let worker = shard_of(conn_id, self.workers);
            self.send(worker, Work::Retire { conn_id, now });
        }
    }

    /// Clears a failed/incomplete group on `conn_id` so a retransmission
    /// (identical identifiers, §3.3) verifies afresh. Ordered with the
    /// connection's chunks: the reset travels the same FIFO.
    pub fn reset_group(&mut self, conn_id: u32, start: u64) {
        self.send(
            shard_of(conn_id, self.workers),
            Work::Reset { conn_id, start },
        );
    }

    fn send(&mut self, worker: usize, work: Work) {
        match &mut self.runtime {
            Runtime::Threads { senders, .. } => {
                // A send can only fail if the worker panicked; surface that
                // at join time, not here.
                let _ = senders[worker].send(work);
            }
            Runtime::Virtual { queues, .. } => {
                queues[worker].push_back(work);
                if self.obs_verbose {
                    // Queue depth is only observable on the virtual engine:
                    // the threads engine's SPSC queues hide their length.
                    // Per-item histogram pressure is verbose-tier cost; the
                    // always-on health surface reads depth at barriers.
                    self.obs.observe(
                        "transport.parallel.queue_depth",
                        queues[worker].len() as u64,
                    );
                }
            }
        }
    }

    /// Drives every queued work item to completion (virtual engine), using
    /// the schedule to interleave workers.
    fn drain_virtual(&mut self) {
        if let Runtime::Virtual {
            picker,
            shards,
            queues,
        } = &mut self.runtime
        {
            while let Some(w) = picker.next(queues) {
                let work = queues[w].pop_front().expect("picker returned non-empty");
                shards[w].process(work);
            }
        }
    }

    /// Drives all queued work to completion without snapshotting anything —
    /// the allocation-free barrier the hot-path alloc tests measure across.
    /// On the virtual engine this processes every queued item inline; on the
    /// threads engine the workers drain continuously and this is a no-op.
    pub fn drain(&mut self) {
        self.drain_virtual();
        // Every worker is quiescent now (virtual engine only — the threads
        // engine's workers keep running, so flushing their shard blocks here
        // would race the owner-writes). Fold shard counters into the root.
        if self.obs_on && matches!(self.runtime, Runtime::Virtual { .. }) {
            self.obs.flush();
        }
    }

    /// Mid-stream snapshot of every registered connection, sorted by
    /// `C.ID`. Acts as a barrier: all work queued so far is processed first.
    pub fn sync(&mut self) -> Vec<SyncSnapshot> {
        let snapshots = match &mut self.runtime {
            Runtime::Threads { senders, .. } => {
                let mut replies = Vec::with_capacity(senders.len());
                for tx in senders.iter() {
                    let (reply_tx, reply_rx) = mpsc::channel();
                    let _ = tx.send(Work::Sync(reply_tx));
                    replies.push(reply_rx);
                }
                let mut snapshots: Vec<SyncSnapshot> = replies
                    .into_iter()
                    .filter_map(|rx| rx.recv().ok())
                    .flatten()
                    .collect();
                snapshots.sort_unstable_by_key(|s| s.conn_id);
                snapshots
            }
            Runtime::Virtual { .. } => {
                self.drain_virtual();
                if let Runtime::Virtual { shards, .. } = &self.runtime {
                    let mut snapshots: Vec<SyncSnapshot> =
                        shards.iter().flat_map(|s| s.snapshots()).collect();
                    snapshots.sort_unstable_by_key(|s| s.conn_id);
                    snapshots
                } else {
                    unreachable!()
                }
            }
        };
        // A true barrier on both engines: every worker has answered (or been
        // drained inline) and the only work producer is this caller, so the
        // shard blocks are quiescent — fold them into the root registry.
        if self.obs_on {
            self.obs.flush();
        }
        snapshots
    }

    /// Current acknowledgment for every registered connection, sorted by
    /// `C.ID`. A barrier, like [`sync`](Self::sync).
    pub fn make_acks(&mut self) -> Vec<(u32, AckInfo)> {
        self.sync()
            .into_iter()
            .map(|s| (s.conn_id, s.ack))
            .collect()
    }

    /// Shuts the pipeline down and merges every worker's state into one
    /// [`ParallelOutcome`]. Receivers (and their application buffers) are
    /// moved, not copied; transcripts are folded; control events are sorted
    /// back into global arrival order.
    pub fn finish(mut self) -> ParallelOutcome {
        let shards: Vec<Shard> = match self.runtime {
            Runtime::Threads { senders, handles } => {
                drop(senders); // closes the queues; workers drain and return
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            }
            Runtime::Virtual { .. } => {
                self.drain_virtual();
                match self.runtime {
                    Runtime::Virtual { shards, .. } => shards,
                    Runtime::Threads { .. } => unreachable!(),
                }
            }
        };

        // Workers have joined (threads) or drained inline (virtual): fold
        // their shard blocks into the root registry, then stamp the merge
        // on the sink's shared clock — never before the newest worker event,
        // so a trace or flight dump cannot interleave merge records out of
        // order with the work they summarise.
        let merge_now = if self.obs_on {
            self.obs.flush();
            self.obs.clock().max(self.last_now)
        } else {
            self.last_now
        };
        let merge_started = Instant::now();
        let mut conns = BTreeMap::new();
        let mut transcript = Wsc2Stream::new();
        let mut worker_chunks = vec![0u64; self.workers];
        let mut process_max_ns = 0u64;
        let mut process_total_ns = 0u64;
        for mut shard in shards {
            transcript.fold(&shard.transcript);
            worker_chunks[shard.index] = shard.chunks;
            if self.obs_on {
                self.obs
                    .observe("transport.parallel.worker_chunks", shard.chunks);
                self.obs.event(
                    merge_now,
                    Event::MergeFolded {
                        worker: shard.index as u32,
                        chunks: shard.chunks,
                    },
                );
            }
            self.dispatch.decode_errors += shard.decode_errors;
            process_max_ns = process_max_ns.max(shard.busy_ns);
            process_total_ns += shard.busy_ns;
            // Drain the worker's table: live connections move out sorted by
            // `C.ID` (pooled shells of retired connections are dropped, and
            // with them any events a retired connection left behind).
            let table = std::mem::take(&mut shard.receivers);
            for (conn_id, receiver) in table.into_entries() {
                let events = shard.events.remove(&conn_id).unwrap_or_default();
                conns.insert(
                    conn_id,
                    ConnReport {
                        worker: shard.index,
                        events,
                        ack: receiver.make_ack(),
                        receiver,
                    },
                );
            }
        }
        if self.obs_on {
            // One fold per worker transcript absorbed, plus any folds the
            // workers themselves performed (`Wsc2Stream::fold_code` per
            // delivered TPDU counts inside the per-worker tallies).
            self.obs
                .counter("transport.parallel.merge_folds", transcript.folds());
            // Every dispatched chunk has now been folded into the single
            // merged outcome: close its merge-queue span. Dispatch order is
            // the open order, so closing in reverse satisfies the span
            // store's LIFO discipline per label.
            for labels in std::mem::take(&mut self.merge_open).into_iter().rev() {
                self.obs
                    .span_close(merge_now, SpanId::new(labels, Stage::MergeQueue));
            }
        }
        let mut control = std::mem::take(&mut self.control);
        control.sort_by_key(|e| e.stamp);
        let merge_ns = merge_started.elapsed().as_nanos() as u64;
        ParallelOutcome {
            conns,
            control,
            transcript_digest: transcript.digest(),
            dispatch: self.dispatch,
            timings: StageTimings {
                dispatch_ns: self.dispatch_ns,
                process_max_ns,
                process_total_ns,
                merge_ns,
            },
            worker_chunks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::{Sender, SenderConfig};

    fn params(conn_id: u32) -> ConnectionParams {
        ConnectionParams {
            conn_id,
            elem_size: 1,
            initial_csn: 0,
            tpdu_elements: 8,
        }
    }

    fn layout() -> InvariantLayout {
        InvariantLayout::with_data_symbols(1024)
    }

    fn spec(conn_id: u32) -> ConnSpec {
        ConnSpec::new(params(conn_id), layout(), DeliveryMode::Immediate, 256)
    }

    fn sender(conn_id: u32) -> Sender {
        Sender::new(SenderConfig {
            params: params(conn_id),
            layout: layout(),
            mtu: 1500,
            min_tpdu_elements: 2,
            max_tpdu_elements: 64,
        })
    }

    fn packets_for(conns: &[u32]) -> Vec<Packet> {
        let mut packets = Vec::new();
        for &id in conns {
            let mut tx = sender(id);
            let mut msg = vec![0u8; 24];
            msg.iter_mut()
                .enumerate()
                .for_each(|(i, b)| *b = (id as u8).wrapping_add(i as u8));
            tx.submit_simple(&msg, id, false);
            packets.extend(tx.packets_for_pending().unwrap());
        }
        packets
    }

    #[test]
    fn shard_of_is_stable_and_balanced() {
        for id in 0..1000u32 {
            assert_eq!(shard_of(id, 4), shard_of(id, 4));
            assert!(shard_of(id, 4) < 4);
        }
        let mut counts = [0usize; 4];
        for id in 0..64u32 {
            counts[shard_of(id, 4)] += 1;
        }
        for c in counts {
            assert!(c >= 8, "sequential ids should spread: {counts:?}");
        }
    }

    type ConnSnapshot = (u32, Vec<u8>, [u8; 8]);

    #[test]
    fn engines_and_worker_counts_agree() {
        let conns = [1u32, 2, 3, 4, 5];
        let packets = packets_for(&conns);
        let mut reference: Option<Vec<ConnSnapshot>> = None;
        for workers in [1usize, 2, 4] {
            for engine in [Engine::Threads, Engine::Virtual(Schedule::Fair)] {
                let mut pr = ParallelReceiver::new(
                    workers,
                    engine,
                    conns.iter().map(|&id| spec(id)).collect(),
                );
                for (i, p) in packets.iter().enumerate() {
                    pr.ingest(p, i as u64);
                }
                let out = pr.finish();
                assert_eq!(out.dispatch.decode_errors, 0);
                let got: Vec<ConnSnapshot> = out
                    .conns
                    .iter()
                    .map(|(&id, r)| {
                        (
                            id,
                            r.receiver.app_data()[..24].to_vec(),
                            out.transcript_digest,
                        )
                    })
                    .collect();
                match &reference {
                    None => reference = Some(got),
                    Some(want) => assert_eq!(&got, want, "workers={workers}"),
                }
            }
        }
    }

    #[test]
    fn unknown_connection_surfaces_as_control_event() {
        let packets = packets_for(&[9]);
        let mut pr = ParallelReceiver::new(2, Engine::Virtual(Schedule::Fair), vec![spec(1)]);
        for p in &packets {
            pr.ingest(p, 0);
        }
        let out = pr.finish();
        assert!(out
            .control
            .iter()
            .any(|e| matches!(e.kind, ControlKind::UnknownConnection { conn_id: 9 })));
    }

    #[test]
    fn malformed_packet_rejected_whole() {
        let mut packets = packets_for(&[1]);
        let frame = packets.remove(0);
        let mut bytes = frame.bytes.to_vec();
        bytes[0] = 0x7F; // bad TYPE on the first chunk
        let bad = Packet {
            bytes: Bytes::from(bytes),
        };
        let mut pr = ParallelReceiver::new(2, Engine::Virtual(Schedule::Fair), vec![spec(1)]);
        pr.ingest(&bad, 0);
        let out = pr.finish();
        assert_eq!(out.dispatch.bad_packets, 1);
        assert_eq!(out.dispatch.chunks_dispatched, 0);
        assert!(out.conns[&1].events.is_empty());
    }

    #[test]
    fn make_acks_is_a_barrier() {
        let packets = packets_for(&[1, 2]);
        for engine in [Engine::Threads, Engine::Virtual(Schedule::Reverse)] {
            let mut pr = ParallelReceiver::new(2, engine, vec![spec(1), spec(2)]);
            for p in &packets {
                pr.ingest(p, 0);
            }
            let acks = pr.make_acks();
            assert_eq!(acks.len(), 2);
            for (_, ack) in &acks {
                assert_eq!(ack.cumulative, 24, "all queued data acked at barrier");
            }
            pr.finish();
        }
    }
}
