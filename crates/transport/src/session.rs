//! A full-duplex conversation endpoint.
//!
//! §2: "we assume that data streams are uni-directional and that
//! bi-directional streams are constructed with two uni-directional streams."
//! A [`Session`] is one endpoint of such a pair: a [`Sender`] for the
//! outbound connection, a [`Receiver`] for the inbound one, and a
//! [`PacketMux`] that lets acknowledgments for the inbound stream ride the
//! outbound data packets — Appendix A's free piggybacking.

use chunks_core::error::CoreError;
use chunks_core::packet::{unpack, Packet};

use crate::ack::AckInfo;
use crate::conn::ConnectionParams;
use crate::mux::PacketMux;
use crate::receiver::{DeliveryMode, Receiver, RxEvent};
use crate::sender::{Sender, SenderConfig};
use chunks_wsc::InvariantLayout;

/// One endpoint of a bidirectional chunk conversation.
#[derive(Debug)]
pub struct Session {
    tx: Sender,
    rx: Receiver,
    mtu: usize,
    local_conn: u32,
    /// Last ack received for our outbound stream, pending a repair pass.
    inbound_ack: Option<AckInfo>,
    /// Whether the first full transmission already happened.
    transmitted_once: bool,
}

impl Session {
    /// Creates an endpoint sending on `local` and receiving the connection
    /// described by `remote`.
    pub fn new(
        local: SenderConfig,
        remote: ConnectionParams,
        remote_layout: InvariantLayout,
        mode: DeliveryMode,
        capacity_elements: u64,
    ) -> Self {
        Session {
            mtu: local.mtu,
            local_conn: local.params.conn_id,
            tx: Sender::new(local),
            rx: Receiver::new(mode, remote, remote_layout, capacity_elements),
            inbound_ack: None,
            transmitted_once: false,
        }
    }

    /// Queues application data on the outbound stream.
    pub fn send(&mut self, data: &[u8], x_id: u32, close: bool) {
        self.tx.submit_simple(data, x_id, close);
        // New data means the window must go out (again).
        self.transmitted_once = false;
    }

    /// The inbound application data received and verified so far.
    pub fn received(&self) -> &[u8] {
        self.rx.app_data()
    }

    /// Verified inbound prefix, in elements.
    pub fn received_elements(&self) -> u64 {
        self.rx.verified_prefix()
    }

    /// True when everything we sent has been acknowledged.
    pub fn outbound_done(&self) -> bool {
        self.tx.pending_tpdus() == 0
    }

    /// Inbound receiver statistics.
    pub fn rx_stats(&self) -> crate::receiver::RxStats {
        self.rx.stats
    }

    /// Builds the next batch of packets to put on the wire: outbound data
    /// (initial transmission, or a selective repair driven by the last ack
    /// we received) with the current inbound ack piggybacked onto it.
    pub fn poll_transmit(&mut self) -> Result<Vec<Packet>, CoreError> {
        let mut mux = PacketMux::new(self.mtu);
        if !self.transmitted_once {
            self.transmitted_once = true;
            for p in self.tx.packets_for_pending()? {
                mux.enqueue_chunks(unpack(&p)?);
            }
        } else if let Some(ack) = self.inbound_ack.take() {
            self.tx.handle_ack(&ack);
            for p in self.tx.retransmit_for_ack(&ack)? {
                mux.enqueue_chunks(unpack(&p)?);
            }
        }
        // Piggyback the current state of the inbound stream. Failed groups
        // are cleared so their retransmissions verify afresh.
        for s in self.rx.failed_starts() {
            self.rx.reset_group(s);
        }
        mux.enqueue_ack(self.local_conn, &self.rx.make_ack());
        mux.flush()
    }

    /// Ingests a packet from the peer: inbound data feeds the receiver,
    /// acks for our outbound connection feed the sender.
    pub fn handle_packet(&mut self, packet: &Packet, now: u64) -> Vec<RxEvent> {
        let mut app_events = Vec::new();
        for event in self.rx.handle_packet(packet, now) {
            match event {
                RxEvent::Acked(ack) => {
                    self.tx.handle_ack(&ack);
                    // Remember it for the next repair pass too.
                    self.inbound_ack = Some(ack);
                }
                other => app_events.push(other),
            }
        }
        app_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunks_core::label::ChunkType;

    fn params(conn_id: u32) -> ConnectionParams {
        ConnectionParams {
            conn_id,
            elem_size: 1,
            initial_csn: 0,
            tpdu_elements: 32,
        }
    }

    fn layout() -> InvariantLayout {
        InvariantLayout::with_data_symbols(2048)
    }

    fn endpoint(local: u32, remote: u32) -> Session {
        Session::new(
            SenderConfig {
                params: params(local),
                layout: layout(),
                mtu: 256,
                min_tpdu_elements: 4,
                max_tpdu_elements: 256,
            },
            params(remote),
            layout(),
            DeliveryMode::Immediate,
            1 << 12,
        )
    }

    /// Runs rounds of alternating exchange with per-packet loss decided by
    /// `lose(round, index)`.
    fn converse(
        a: &mut Session,
        b: &mut Session,
        mut lose: impl FnMut(u32, usize) -> bool,
        max_rounds: u32,
    ) -> u32 {
        for round in 0..max_rounds {
            let a_out = a.poll_transmit().unwrap();
            for (i, p) in a_out.iter().enumerate() {
                if !lose(round, i) {
                    b.handle_packet(p, round as u64);
                }
            }
            let b_out = b.poll_transmit().unwrap();
            for (i, p) in b_out.iter().enumerate() {
                if !lose(round, i + 1000) {
                    a.handle_packet(p, round as u64);
                }
            }
            if a.outbound_done() && b.outbound_done() {
                return round + 1;
            }
        }
        max_rounds
    }

    #[test]
    fn clean_bidirectional_exchange() {
        let mut a = endpoint(1, 2);
        let mut b = endpoint(2, 1);
        let ping = b"ping from a, with some padding to span TPDUs....";
        a.send(ping, 0xA, false);
        b.send(b"pong from b", 0xB, false);
        let rounds = converse(&mut a, &mut b, |_, _| false, 8);
        assert!(rounds <= 3, "clean exchange settles quickly ({rounds})");
        assert_eq!(&b.received()[..ping.len()], ping.as_slice());
        assert_eq!(&a.received()[..11], b"pong from b");
    }

    #[test]
    fn acks_ride_data_packets() {
        let mut a = endpoint(1, 2);
        let mut b = endpoint(2, 1);
        a.send(&[0x11; 64], 0xA, false);
        b.send(&[0x22; 64], 0xB, false);
        // A transmits; B hears it, then B's next batch carries both B's
        // data and the ack for A — in shared packets.
        for p in a.poll_transmit().unwrap() {
            b.handle_packet(&p, 0);
        }
        let batch = b.poll_transmit().unwrap();
        let mut saw_combined = false;
        for p in &batch {
            let chunks = unpack(p).unwrap();
            let has_data = chunks.iter().any(|c| c.header.ty == ChunkType::Data);
            let has_ack = chunks.iter().any(|c| c.header.ty == ChunkType::Ack);
            saw_combined |= has_data && has_ack;
        }
        assert!(saw_combined, "ack must share an envelope with data");
    }

    #[test]
    fn lossy_conversation_converges() {
        let mut a = endpoint(1, 2);
        let mut b = endpoint(2, 1);
        let msg_a: Vec<u8> = (0..512).map(|i| i as u8).collect();
        let msg_b: Vec<u8> = (0..384).map(|i| (i * 5) as u8).collect();
        a.send(&msg_a, 0xA, false);
        b.send(&msg_b, 0xB, false);
        // Deterministic pseudo-random loss, ~25%.
        let mut state = 0x1234u64;
        let rounds = converse(
            &mut a,
            &mut b,
            move |_, _| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33).is_multiple_of(4)
            },
            40,
        );
        assert!(rounds < 40, "did not converge");
        assert_eq!(&b.received()[..msg_a.len()], &msg_a[..]);
        assert_eq!(&a.received()[..msg_b.len()], &msg_b[..]);
    }

    #[test]
    fn one_way_session_acks_without_data() {
        // B has nothing to send: its batches are pure-ack packets.
        let mut a = endpoint(1, 2);
        let mut b = endpoint(2, 1);
        a.send(&[7u8; 100], 0xA, false);
        let rounds = converse(&mut a, &mut b, |_, _| false, 8);
        assert!(rounds <= 3);
        assert_eq!(b.received_elements(), 100);
        assert!(a.outbound_done());
    }

    #[test]
    fn late_send_reopens_transmission() {
        let mut a = endpoint(1, 2);
        let mut b = endpoint(2, 1);
        a.send(&[1u8; 32], 0xA, false);
        converse(&mut a, &mut b, |_, _| false, 8);
        assert!(a.outbound_done());
        // A second message later on the same session.
        a.send(&[2u8; 32], 0xA2, false);
        let rounds = converse(&mut a, &mut b, |_, _| false, 8);
        assert!(rounds <= 3);
        assert_eq!(b.received_elements(), 64);
        assert_eq!(&b.received()[32..64], &[2u8; 32]);
    }
}
