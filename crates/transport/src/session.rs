//! A full-duplex conversation endpoint.
//!
//! §2: "we assume that data streams are uni-directional and that
//! bi-directional streams are constructed with two uni-directional streams."
//! A [`Session`] is one endpoint of such a pair: a [`Sender`] for the
//! outbound connection, a [`Receiver`] for the inbound one, and a
//! [`PacketMux`] that lets acknowledgments for the inbound stream ride the
//! outbound data packets — Appendix A's free piggybacking.

use std::collections::VecDeque;
use std::sync::Arc;

use chunks_core::error::CoreError;
use chunks_core::packet::{unpack, Packet};
use chunks_obs::{
    Event, HealthEvent, HealthReport, Labels, ObsSink, SpanId, Stage, Watchdog, WatchdogConfig,
};

use crate::ack::AckInfo;
use crate::conn::ConnectionParams;
use crate::mux::PacketMux;
use crate::receiver::{DeliveryMode, Receiver, RxEvent};
use crate::rto::{DegradePolicy, RetransmitTimer, RtoConfig, TimerVerdict, TransportError};
use crate::sender::{Sender, SenderConfig};
use chunks_wsc::InvariantLayout;

/// Counters kept by the session's reliability layer.
///
/// Field names follow the `chunks-obs` metrics catalogue (one style:
/// `*_retransmits`, never `*_retransmissions`): each field is the ad-hoc
/// twin of a registry metric, and [`Self::as_metrics`] yields the pairs
/// under their catalogued names. The fields stay public under these exact
/// names — tests and the soak harness read them directly.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ReliabilityStats {
    /// TPDUs retransmitted because their timer fired (no ack arrived).
    /// Registry twin: `transport.rto.timer_retransmits`.
    pub timer_retransmits: u64,
    /// TPDUs shed after their retry budget emptied (graceful degradation).
    /// Registry twin: `transport.rto.shed_tpdus`.
    pub shed_tpdus: u64,
    /// RTT samples absorbed by the estimator.
    /// Registry twin: `transport.rto.rtt_samples`.
    pub rtt_samples: u64,
    /// The current base RTO in virtual nanoseconds.
    /// Registry twin: the `transport.rto.base_rto_ns` histogram (the
    /// registry records one observation per pump; this field is the latest).
    pub base_rto_ns: u64,
    /// Packets deferred to a later pump by the burst cap.
    /// Registry twin: `transport.session.burst_deferrals`.
    pub burst_deferrals: u64,
    /// Repair passes and due timers deferred because the peer signalled
    /// budget back-pressure (retries are *not* consumed by a deferral).
    /// Registry twin: `transport.session.pressure_deferrals`.
    pub pressure_deferrals: u64,
}

impl ReliabilityStats {
    /// The counters as `(catalogue name, value)` pairs, named exactly as
    /// the `chunks-obs` registry exports them (see `docs/OBSERVABILITY.md`).
    pub fn as_metrics(&self) -> [(&'static str, u64); 6] {
        [
            ("transport.rto.timer_retransmits", self.timer_retransmits),
            ("transport.rto.shed_tpdus", self.shed_tpdus),
            ("transport.rto.rtt_samples", self.rtt_samples),
            ("transport.rto.base_rto_ns", self.base_rto_ns),
            ("transport.session.burst_deferrals", self.burst_deferrals),
            (
                "transport.session.pressure_deferrals",
                self.pressure_deferrals,
            ),
        ]
    }
}

/// One endpoint of a bidirectional chunk conversation.
#[derive(Debug)]
pub struct Session {
    tx: Sender,
    rx: Receiver,
    mtu: usize,
    local_conn: u32,
    /// Last ack received for our outbound stream, pending a repair pass.
    inbound_ack: Option<AckInfo>,
    /// Whether the first full transmission already happened.
    transmitted_once: bool,
    /// Timer-driven retransmission state (virtual clock).
    rto: RetransmitTimer,
    /// The session's virtual clock, advanced by [`Self::pump`] and
    /// [`Self::handle_packet`] (monotonic).
    clock: u64,
    /// Packets built but withheld by the per-pump burst cap.
    backlog: VecDeque<Packet>,
    /// Maximum packets emitted per [`Self::pump`] call.
    max_burst_packets: usize,
    /// Maximum TPDUs repaired per ack-driven pass (window-limited repair).
    repair_limit_tpdus: usize,
    /// Sticky dead-peer verdict: once declared, every later pump repeats it.
    dead: Option<TransportError>,
    /// The peer's last back-pressure signal (from the newest ack). While
    /// true, repair passes and due timers defer instead of retransmitting.
    peer_pressure: bool,
    /// Timer/shedding counters.
    stats: ReliabilityStats,
    /// Observability sink (no-op by default).
    obs: Arc<dyn ObsSink>,
    /// Cached `obs.enabled()` so the disabled path costs one branch.
    obs_on: bool,
    /// TPDU starts with an open `repair` span (RTO fired, ack still
    /// outstanding). Populated only when `obs_on`.
    repairing: std::collections::HashSet<u64>,
    /// Periodic health aggregation and threshold rules (opt-in).
    watchdog: Option<Watchdog>,
    /// Typed health events the watchdog has emitted, oldest first. Drained
    /// by [`Self::take_health_events`].
    health_events: Vec<HealthEvent>,
}

impl Session {
    /// Creates an endpoint sending on `local` and receiving the connection
    /// described by `remote`.
    pub fn new(
        local: SenderConfig,
        remote: ConnectionParams,
        remote_layout: InvariantLayout,
        mode: DeliveryMode,
        capacity_elements: u64,
    ) -> Self {
        Session {
            mtu: local.mtu,
            local_conn: local.params.conn_id,
            tx: Sender::new(local),
            rx: Receiver::new(mode, remote, remote_layout, capacity_elements),
            inbound_ack: None,
            transmitted_once: false,
            rto: RetransmitTimer::new(RtoConfig::default()),
            clock: 0,
            backlog: VecDeque::new(),
            max_burst_packets: 256,
            repair_limit_tpdus: 64,
            dead: None,
            peer_pressure: false,
            stats: ReliabilityStats::default(),
            obs: chunks_obs::null(),
            obs_on: false,
            repairing: std::collections::HashSet::new(),
            watchdog: None,
            health_events: Vec::new(),
        }
    }

    /// Attaches an observability sink to the session and its receiver.
    /// Metrics and events flow only while `sink.enabled()` is true.
    pub fn with_obs(mut self, sink: Arc<dyn ObsSink>) -> Self {
        self.rx.set_obs(sink.clone());
        self.obs_on = sink.enabled();
        self.obs = sink;
        self
    }

    /// Arms the periodic health watchdog: every `cfg.interval_ns` of
    /// virtual time, [`Self::pump`] aggregates a [`HealthReport`] and runs
    /// the threshold rules; any [`HealthEvent`]s they emit accumulate until
    /// [`Self::take_health_events`] drains them.
    pub fn with_watchdog(mut self, cfg: WatchdogConfig) -> Self {
        self.watchdog = Some(Watchdog::new(cfg));
        self
    }

    /// Aggregates the session's current health into one report stamped at
    /// the virtual clock: receiver delivery/corruption counters, budget
    /// occupancy, RTO state, and the emit backlog depth.
    pub fn health_report(&self) -> HealthReport {
        let rx = self.rx.stats;
        HealthReport {
            at_ns: self.clock,
            live_conns: 1,
            admissions: 0,
            evictions: 0,
            refusals: 0,
            under_pressure: self.peer_pressure,
            held_bytes: rx.buffered_bytes,
            shed_bytes: rx.shed_bytes,
            timer_fires: self.rto.fires,
            timer_retransmits: self.stats.timer_retransmits,
            rto_base_ns: self.rto.base_rto_ns(),
            queue_depth: self.backlog.len() as u64,
            tpdus_delivered: rx.tpdus_delivered,
            tpdus_failed: rx.tpdus_failed,
        }
    }

    /// Drains the typed health events the watchdog has emitted so far.
    pub fn take_health_events(&mut self) -> Vec<HealthEvent> {
        std::mem::take(&mut self.health_events)
    }

    /// Replaces the retransmission-timer configuration (call before the
    /// first transmission).
    pub fn with_rto(mut self, cfg: RtoConfig) -> Self {
        self.rto = RetransmitTimer::new(cfg);
        self
    }

    /// Sets the inbound receiver's overlap policy (call before data flows).
    pub fn with_overlap_policy(mut self, policy: chunks_vreasm::OverlapPolicy) -> Self {
        self.rx.set_policy(policy);
        self
    }

    /// Installs a resource budget on the inbound receiver.
    pub fn with_rx_budget(mut self, budget: crate::budget::ResourceBudget) -> Self {
        self.rx.set_budget(budget);
        self
    }

    /// Routes the inbound receiver through the pre-refactor owned decode
    /// path (the differential oracle). Zero-copy is the default.
    pub fn set_legacy_owned(&mut self, legacy: bool) {
        self.rx.set_legacy_owned(legacy);
    }

    /// Pre-sizes the inbound receiver for an expected load so the steady
    /// state stays allocation-free (see [`Receiver::reserve`]).
    pub fn reserve_rx(&mut self, tpdus: usize, fragments: usize) {
        self.rx.reserve(tpdus, fragments);
    }

    /// Typed budget-exhaustion report from the inbound receiver, once any
    /// bytes have been shed.
    pub fn budget_error(&self) -> Option<TransportError> {
        self.rx.budget_error()
    }

    /// The peer's most recent back-pressure signal.
    pub fn peer_pressure(&self) -> bool {
        self.peer_pressure
    }

    /// Overrides the per-pump burst cap (packets) and the per-pass repair
    /// limit (TPDUs).
    pub fn with_burst_limits(
        mut self,
        max_burst_packets: usize,
        repair_limit_tpdus: usize,
    ) -> Self {
        self.max_burst_packets = max_burst_packets.max(1);
        self.repair_limit_tpdus = repair_limit_tpdus.max(1);
        self
    }

    /// Queues application data on the outbound stream.
    pub fn send(&mut self, data: &[u8], x_id: u32, close: bool) {
        self.tx.submit_simple(data, x_id, close);
        // New data means the window must go out (again).
        self.transmitted_once = false;
    }

    /// The inbound application data received and verified so far.
    pub fn received(&self) -> &[u8] {
        self.rx.app_data()
    }

    /// Verified inbound prefix, in elements.
    pub fn received_elements(&self) -> u64 {
        self.rx.verified_prefix()
    }

    /// True when everything we sent has been acknowledged.
    pub fn outbound_done(&self) -> bool {
        self.tx.pending_tpdus() == 0
    }

    /// Inbound receiver statistics.
    pub fn rx_stats(&self) -> crate::receiver::RxStats {
        self.rx.stats
    }

    /// The session's virtual clock.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Snapshot of the reliability counters.
    pub fn reliability(&self) -> ReliabilityStats {
        ReliabilityStats {
            rtt_samples: self.rto.samples,
            base_rto_ns: self.rto.base_rto_ns(),
            ..self.stats
        }
    }

    /// Builds the next batch of packets to put on the wire: outbound data
    /// (initial transmission, or a selective repair driven by the last ack
    /// we received) with the current inbound ack piggybacked onto it.
    ///
    /// This is the purely reactive half of the sender — lost acks stall it.
    /// Timer-driven recovery lives in [`Self::pump`].
    pub fn poll_transmit(&mut self) -> Result<Vec<Packet>, CoreError> {
        match self.emit(false) {
            Ok(packets) => Ok(packets),
            Err(TransportError::Core(e)) => Err(e),
            Err(other) => unreachable!("timer verdicts are disabled on this path: {other}"),
        }
    }

    /// Advances the virtual clock to `now` and builds the next batch of
    /// packets: everything [`Self::poll_transmit`] does *plus* timer-driven
    /// retransmission of unacked TPDUs whose RTO expired (identical labels,
    /// §3.3). When a TPDU's retry budget empties, the configured
    /// [`DegradePolicy`] decides between shedding it (the window keeps
    /// moving; see [`ReliabilityStats::shed_tpdus`]) and the sticky
    /// [`TransportError::PeerUnreachable`] verdict.
    pub fn pump(&mut self, now: u64) -> Result<Vec<Packet>, TransportError> {
        if let Some(err) = &self.dead {
            return Err(err.clone());
        }
        self.clock = self.clock.max(now);
        if self.obs_on {
            self.obs.counter("transport.session.pumps", 1);
            self.obs
                .observe("transport.rto.base_rto_ns", self.rto.base_rto_ns());
        }
        if self.watchdog.as_ref().is_some_and(|wd| wd.due(self.clock)) {
            let report = self.health_report();
            let obs = Arc::clone(&self.obs);
            if let Some(wd) = self.watchdog.as_mut() {
                self.health_events.extend(wd.tick(&report, &*obs));
            }
        }
        self.emit(true)
    }

    fn emit(&mut self, timers: bool) -> Result<Vec<Packet>, TransportError> {
        let now = self.clock;
        let mut mux = PacketMux::new(self.mtu);
        // TPDUs put on the wire by this call, and whether the send is a
        // retransmission (ambiguous for RTT sampling — Karn's rule).
        let mut sent: Vec<(u64, bool)> = Vec::new();

        if !self.transmitted_once {
            self.transmitted_once = true;
            for p in self.tx.packets_for_pending()? {
                mux.enqueue_chunks(unpack(&p)?);
            }
            for s in self.tx.unacked_starts() {
                // A TPDU that was already armed is going out again.
                let again = self.rto.rto_for(s).is_some();
                sent.push((s, again));
            }
        } else if let Some(ack) = self.inbound_ack.take() {
            self.tx.handle_ack(&ack);
            if ack.pressure {
                // The peer's budget is near exhaustion: a repair pass now
                // would only feed bytes to the shedder. Defer it; the next
                // unpressured ack re-triggers selective repair.
                self.stats.pressure_deferrals += 1;
                if self.obs_on {
                    self.obs.counter("transport.session.pressure_deferrals", 1);
                }
            } else {
                let (packets, repaired) = self
                    .tx
                    .retransmit_for_ack_parts(&ack, self.repair_limit_tpdus)?;
                for p in packets {
                    mux.enqueue_chunks(unpack(&p)?);
                }
                sent.extend(repaired.into_iter().map(|s| (s, true)));
            }
        }

        if timers && self.peer_pressure {
            // Back-pressure: push due timers forward without consuming
            // retries — deferral, not decay, so the retry budget is intact
            // when the pressure clears.
            let deferred = self.rto.defer_due(now);
            if !deferred.is_empty() {
                self.stats.pressure_deferrals += deferred.len() as u64;
                if self.obs_on {
                    self.obs.counter(
                        "transport.session.pressure_deferrals",
                        deferred.len() as u64,
                    );
                }
            }
        } else if timers {
            let fires_before = self.rto.fires;
            let verdicts = self.rto.poll(now);
            if self.obs_on {
                self.obs
                    .counter("transport.rto.timer_fires", self.rto.fires - fires_before);
            }
            for verdict in verdicts {
                match verdict {
                    TimerVerdict::Retransmit(start) => {
                        if !self.tx.is_pending(start) {
                            // Acked or shed since the timer was armed.
                            self.rto.forget(start);
                            continue;
                        }
                        for p in self.tx.retransmit(&[start])? {
                            mux.enqueue_chunks(unpack(&p)?);
                        }
                        self.stats.timer_retransmits += 1;
                        if self.obs_on {
                            self.obs.counter("transport.rto.timer_retransmits", 1);
                            self.obs.event(
                                now,
                                Event::RetransmitFired {
                                    conn_id: self.local_conn,
                                    start: start as u32,
                                    retries: self.rto.retries_for(start).unwrap_or(0),
                                },
                            );
                            // The repair span runs from the first timer fire
                            // to the ack that finally repairs the TPDU.
                            if self.repairing.insert(start) {
                                self.obs.span_open(
                                    now,
                                    SpanId::new(
                                        Labels::new(self.local_conn, start as u32, 0),
                                        Stage::Repair,
                                    ),
                                );
                            }
                            // `poll` already backed the timer off; record the
                            // RTO the re-armed entry is now running under.
                            if let Some(rto_ns) = self.rto.rto_for(start) {
                                self.obs.observe("transport.rto.backoff_rto_ns", rto_ns);
                                self.obs.event(
                                    now,
                                    Event::BackoffApplied {
                                        conn_id: self.local_conn,
                                        start: start as u32,
                                        rto_ns,
                                    },
                                );
                            }
                        }
                        // `poll` already backed the timer off and re-armed.
                    }
                    TimerVerdict::Exhausted {
                        start,
                        retries,
                        elapsed_ns,
                    } => match self.rto.config().policy {
                        DegradePolicy::Shed => {
                            if self.tx.abandon(start) {
                                self.stats.shed_tpdus += 1;
                                if self.obs_on {
                                    self.obs.counter("transport.rto.shed_tpdus", 1);
                                    self.obs.event(
                                        now,
                                        Event::VerdictReached {
                                            conn_id: self.local_conn,
                                            verdict: "shed",
                                            start: start as u32,
                                        },
                                    );
                                }
                            }
                        }
                        DegradePolicy::Abort => {
                            let err = TransportError::PeerUnreachable {
                                conn_id: self.local_conn,
                                tpdu_start: start,
                                retries,
                                elapsed_ns,
                            };
                            self.dead = Some(err.clone());
                            if self.obs_on {
                                self.obs.counter("transport.session.dead_verdicts", 1);
                                self.obs.event(
                                    now,
                                    Event::VerdictReached {
                                        conn_id: self.local_conn,
                                        verdict: "peer-unreachable",
                                        start: start as u32,
                                    },
                                );
                                // The sticky verdict is the canonical
                                // degradation trigger: an always-on sink
                                // captures its flight-recorder postmortem
                                // here.
                                self.obs.degraded(now, "peer-unreachable", self.local_conn);
                            }
                            return Err(err);
                        }
                    },
                }
            }
        }

        // Arm (or re-arm) the timer for everything this call sent. This runs
        // after the poll above so a TPDU armed now cannot fire in the same
        // call it went out in.
        for (s, retransmission) in sent {
            if self.obs_on {
                // Mark the emission; repeat markers on the same labels are
                // the lineage view of retransmission.
                let id = SpanId::new(Labels::new(self.local_conn, s as u32, 0), Stage::Emit);
                self.obs.span_open(now, id);
                self.obs.span_close(now, id);
            }
            self.rto.on_send(s, now, retransmission);
        }

        // Piggyback the current state of the inbound stream. Failed groups
        // are cleared so their retransmissions verify afresh.
        for s in self.rx.failed_starts() {
            self.rx.reset_group(s);
        }
        mux.enqueue_ack(self.local_conn, &self.rx.make_ack());

        // Burst cap: everything queues, at most `max_burst_packets` leave.
        self.backlog.extend(mux.flush()?);
        let take = self.backlog.len().min(self.max_burst_packets);
        let out: Vec<Packet> = self.backlog.drain(..take).collect();
        self.stats.burst_deferrals += self.backlog.len() as u64;
        if self.obs_on {
            self.obs
                .counter("transport.session.packets_emitted", out.len() as u64);
            self.obs.counter(
                "transport.session.burst_deferrals",
                self.backlog.len() as u64,
            );
        }
        Ok(out)
    }

    /// Ingests a packet from the peer: inbound data feeds the receiver,
    /// acks for our outbound connection feed the sender (disarming timers
    /// and, for never-retransmitted TPDUs, contributing RTT samples).
    pub fn handle_packet(&mut self, packet: &Packet, now: u64) -> Vec<RxEvent> {
        self.clock = self.clock.max(now);
        let mut app_events = Vec::new();
        for event in self.rx.handle_packet(packet, now) {
            match event {
                RxEvent::Acked(ack) => {
                    let samples_before = self.rto.samples;
                    for start in self.tx.handle_ack(&ack) {
                        if self.obs_on && self.repairing.remove(&start) {
                            self.obs.span_close(
                                self.clock,
                                SpanId::new(
                                    Labels::new(self.local_conn, start as u32, 0),
                                    Stage::Repair,
                                ),
                            );
                        }
                        self.rto.on_ack(start, self.clock);
                    }
                    if self.obs_on {
                        self.obs.counter(
                            "transport.rto.rtt_samples",
                            self.rto.samples - samples_before,
                        );
                    }
                    // Remember it for the next repair pass too.
                    self.peer_pressure = ack.pressure;
                    self.inbound_ack = Some(ack);
                }
                other => app_events.push(other),
            }
        }
        app_events
    }

    /// Batched twin of [`Self::handle_packet`]: ingests a burst of packets
    /// that share one arrival stamp, advancing the clock once. Pairs with
    /// the receiver's own [`Receiver::ingest_batch`] amortisation — the
    /// session-level bookkeeping (clock max, ack routing) happens per batch
    /// instead of per packet.
    pub fn handle_packets(&mut self, packets: &[Packet], now: u64) -> Vec<RxEvent> {
        self.clock = self.clock.max(now);
        let mut app_events = Vec::new();
        for packet in packets {
            app_events.extend(self.handle_packet(packet, self.clock));
        }
        app_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunks_core::label::ChunkType;

    fn params(conn_id: u32) -> ConnectionParams {
        ConnectionParams {
            conn_id,
            elem_size: 1,
            initial_csn: 0,
            tpdu_elements: 32,
        }
    }

    fn layout() -> InvariantLayout {
        InvariantLayout::with_data_symbols(2048)
    }

    fn endpoint(local: u32, remote: u32) -> Session {
        Session::new(
            SenderConfig {
                params: params(local),
                layout: layout(),
                mtu: 256,
                min_tpdu_elements: 4,
                max_tpdu_elements: 256,
            },
            params(remote),
            layout(),
            DeliveryMode::Immediate,
            1 << 12,
        )
    }

    /// Runs rounds of alternating exchange with per-packet loss decided by
    /// `lose(round, index)`.
    fn converse(
        a: &mut Session,
        b: &mut Session,
        mut lose: impl FnMut(u32, usize) -> bool,
        max_rounds: u32,
    ) -> u32 {
        for round in 0..max_rounds {
            let a_out = a.poll_transmit().unwrap();
            for (i, p) in a_out.iter().enumerate() {
                if !lose(round, i) {
                    b.handle_packet(p, round as u64);
                }
            }
            let b_out = b.poll_transmit().unwrap();
            for (i, p) in b_out.iter().enumerate() {
                if !lose(round, i + 1000) {
                    a.handle_packet(p, round as u64);
                }
            }
            if a.outbound_done() && b.outbound_done() {
                return round + 1;
            }
        }
        max_rounds
    }

    #[test]
    fn clean_bidirectional_exchange() {
        let mut a = endpoint(1, 2);
        let mut b = endpoint(2, 1);
        let ping = b"ping from a, with some padding to span TPDUs....";
        a.send(ping, 0xA, false);
        b.send(b"pong from b", 0xB, false);
        let rounds = converse(&mut a, &mut b, |_, _| false, 8);
        assert!(rounds <= 3, "clean exchange settles quickly ({rounds})");
        assert_eq!(&b.received()[..ping.len()], ping.as_slice());
        assert_eq!(&a.received()[..11], b"pong from b");
    }

    #[test]
    fn acks_ride_data_packets() {
        let mut a = endpoint(1, 2);
        let mut b = endpoint(2, 1);
        a.send(&[0x11; 64], 0xA, false);
        b.send(&[0x22; 64], 0xB, false);
        // A transmits; B hears it, then B's next batch carries both B's
        // data and the ack for A — in shared packets.
        for p in a.poll_transmit().unwrap() {
            b.handle_packet(&p, 0);
        }
        let batch = b.poll_transmit().unwrap();
        let mut saw_combined = false;
        for p in &batch {
            let chunks = unpack(p).unwrap();
            let has_data = chunks.iter().any(|c| c.header.ty == ChunkType::Data);
            let has_ack = chunks.iter().any(|c| c.header.ty == ChunkType::Ack);
            saw_combined |= has_data && has_ack;
        }
        assert!(saw_combined, "ack must share an envelope with data");
    }

    #[test]
    fn lossy_conversation_converges() {
        let mut a = endpoint(1, 2);
        let mut b = endpoint(2, 1);
        let msg_a: Vec<u8> = (0..512).map(|i| i as u8).collect();
        let msg_b: Vec<u8> = (0..384).map(|i| (i * 5) as u8).collect();
        a.send(&msg_a, 0xA, false);
        b.send(&msg_b, 0xB, false);
        // Deterministic pseudo-random loss, ~25%.
        let mut state = 0x1234u64;
        let rounds = converse(
            &mut a,
            &mut b,
            move |_, _| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33).is_multiple_of(4)
            },
            40,
        );
        assert!(rounds < 40, "did not converge");
        assert_eq!(&b.received()[..msg_a.len()], &msg_a[..]);
        assert_eq!(&a.received()[..msg_b.len()], &msg_b[..]);
    }

    #[test]
    fn one_way_session_acks_without_data() {
        // B has nothing to send: its batches are pure-ack packets.
        let mut a = endpoint(1, 2);
        let mut b = endpoint(2, 1);
        a.send(&[7u8; 100], 0xA, false);
        let rounds = converse(&mut a, &mut b, |_, _| false, 8);
        assert!(rounds <= 3);
        assert_eq!(b.received_elements(), 100);
        assert!(a.outbound_done());
    }

    #[test]
    fn late_send_reopens_transmission() {
        let mut a = endpoint(1, 2);
        let mut b = endpoint(2, 1);
        a.send(&[1u8; 32], 0xA, false);
        converse(&mut a, &mut b, |_, _| false, 8);
        assert!(a.outbound_done());
        // A second message later on the same session.
        a.send(&[2u8; 32], 0xA2, false);
        let rounds = converse(&mut a, &mut b, |_, _| false, 8);
        assert!(rounds <= 3);
        assert_eq!(b.received_elements(), 64);
        assert_eq!(&b.received()[32..64], &[2u8; 32]);
    }
}
