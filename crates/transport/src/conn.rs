//! Connection management signalling.
//!
//! The connection is "a single, unmultiplexed application-to-application
//! conversation" (§2, citing FELD 90). Its beginning is indicated by a
//! signalling message rather than an SN of zero, its end by the `C.ST` bit
//! (or a teardown signal). Establishment also signals the parameters that
//! let compressed header forms elide fields (Appendix A): the data element
//! `SIZE` and the TPDU size.

use bytes::Bytes;
use chunks_core::chunk::{Chunk, ChunkHeader};
use chunks_core::error::CoreError;
use chunks_core::label::{ChunkType, FramingTuple};

/// Parameters of one connection, agreed at establishment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConnectionParams {
    /// Connection identifier (`C.ID`).
    pub conn_id: u32,
    /// Data element size in bytes (`SIZE` of data chunks).
    pub elem_size: u16,
    /// Initial `C.SN` (connections reuse sequence numbers over time, so the
    /// start is signalled, not implied to be zero).
    pub initial_csn: u32,
    /// Elements per TPDU the sender intends to use.
    pub tpdu_elements: u32,
}

/// A connection signalling message, carried in a `Signal` control chunk.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Signal {
    /// Opens a connection and announces its parameters.
    Establish(ConnectionParams),
    /// Closes a connection explicitly (the alternative to `C.ST`,
    /// Appendix A notes the `C.ST` bit itself could be signalled).
    Teardown {
        /// The connection being closed.
        conn_id: u32,
    },
    /// Declares the connection dead from the sender's side: the reliability
    /// layer's retry budget emptied ([`crate::rto::TransportError`]'s
    /// `PeerUnreachable`), so the peer should stop waiting for repairs.
    Abort {
        /// The connection being aborted.
        conn_id: u32,
        /// Reason code (today only [`Signal::ABORT_PEER_UNREACHABLE`]).
        code: u8,
    },
}

impl Signal {
    /// Abort reason: the retransmission retry budget emptied without an ack.
    pub const ABORT_PEER_UNREACHABLE: u8 = 1;

    /// Encodes the signal payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Signal::Establish(p) => {
                let mut out = vec![1u8];
                out.extend_from_slice(&p.conn_id.to_be_bytes());
                out.extend_from_slice(&p.elem_size.to_be_bytes());
                out.extend_from_slice(&p.initial_csn.to_be_bytes());
                out.extend_from_slice(&p.tpdu_elements.to_be_bytes());
                out
            }
            Signal::Teardown { conn_id } => {
                let mut out = vec![2u8];
                out.extend_from_slice(&conn_id.to_be_bytes());
                out
            }
            Signal::Abort { conn_id, code } => {
                let mut out = vec![3u8];
                out.extend_from_slice(&conn_id.to_be_bytes());
                out.push(*code);
                out
            }
        }
    }

    /// Decodes a signal payload.
    pub fn decode(buf: &[u8]) -> Option<Signal> {
        match *buf.first()? {
            1 if buf.len() == 15 => Some(Signal::Establish(ConnectionParams {
                conn_id: u32::from_be_bytes(buf[1..5].try_into().ok()?),
                elem_size: u16::from_be_bytes(buf[5..7].try_into().ok()?),
                initial_csn: u32::from_be_bytes(buf[7..11].try_into().ok()?),
                tpdu_elements: u32::from_be_bytes(buf[11..15].try_into().ok()?),
            })),
            2 if buf.len() == 5 => Some(Signal::Teardown {
                conn_id: u32::from_be_bytes(buf[1..5].try_into().ok()?),
            }),
            3 if buf.len() == 6 => Some(Signal::Abort {
                conn_id: u32::from_be_bytes(buf[1..5].try_into().ok()?),
                code: buf[5],
            }),
            _ => None,
        }
    }

    /// Wraps the signal in a control chunk.
    pub fn to_chunk(&self) -> Chunk {
        let payload = self.encode();
        let conn_id = match self {
            Signal::Establish(p) => p.conn_id,
            Signal::Teardown { conn_id } | Signal::Abort { conn_id, .. } => *conn_id,
        };
        Chunk::new(
            ChunkHeader::control(
                ChunkType::Signal,
                payload.len() as u16,
                FramingTuple::new(conn_id, 0, false),
                FramingTuple::new(0, 0, false),
                FramingTuple::new(0, 0, false),
            ),
            Bytes::from(payload),
        )
        .expect("signal chunk is consistent")
    }

    /// Extracts a signal from a control chunk.
    pub fn from_chunk(chunk: &Chunk) -> Result<Signal, CoreError> {
        if chunk.header.ty != ChunkType::Signal {
            return Err(CoreError::BadType(chunk.header.ty.to_u8()));
        }
        Signal::decode(&chunk.payload).ok_or(CoreError::Truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ConnectionParams {
        ConnectionParams {
            conn_id: 0xAB,
            elem_size: 4,
            initial_csn: 1000,
            tpdu_elements: 256,
        }
    }

    #[test]
    fn establish_roundtrip() {
        let s = Signal::Establish(params());
        assert_eq!(Signal::decode(&s.encode()), Some(s));
    }

    #[test]
    fn teardown_roundtrip() {
        let s = Signal::Teardown { conn_id: 7 };
        assert_eq!(Signal::decode(&s.encode()), Some(s));
    }

    #[test]
    fn chunk_roundtrip() {
        let s = Signal::Establish(params());
        let c = s.to_chunk();
        assert_eq!(c.header.ty, ChunkType::Signal);
        assert_eq!(c.header.conn.id, 0xAB);
        assert_eq!(Signal::from_chunk(&c).unwrap(), s);
    }

    #[test]
    fn abort_roundtrip() {
        let s = Signal::Abort {
            conn_id: 9,
            code: Signal::ABORT_PEER_UNREACHABLE,
        };
        assert_eq!(Signal::decode(&s.encode()), Some(s));
        assert_eq!(Signal::from_chunk(&s.to_chunk()).unwrap(), s);
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(Signal::decode(&[]), None);
        assert_eq!(Signal::decode(&[9, 0, 0]), None);
        assert_eq!(Signal::decode(&[1, 0]), None);
        assert_eq!(Signal::decode(&[3, 0, 0, 0, 0]), None, "abort too short");
    }
}
