//! Dynamic path-MTU determination (Kent–Mogul, discussed in §3).
//!
//! Kent and Mogul's alternative to fragmentation is to never send a packet
//! larger than the path minimum, "dynamically determining the MTU for a
//! route". The probe engine here binary-searches between a size known to
//! survive and one known to be dropped, using don't-fragment-style probe
//! packets. The XTP-style baseline needs this to size its PDUs; the chunk
//! transport can use it as an optimization (fewer in-network splits) but
//! never *needs* it — routers refragment chunks transparently.

/// Binary-search state for path-MTU discovery.
///
/// ```
/// use chunks_transport::MtuProbe;
/// let mut probe = MtuProbe::new(68, 9000);
/// let path_mtu = 1500; // what the network would reveal
/// while let Some(size) = probe.next_probe() {
///     probe.report(size, size <= path_mtu);
/// }
/// assert_eq!(probe.discovered(), Some(1500));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct MtuProbe {
    /// Largest probe size known to traverse the path.
    lo: usize,
    /// Smallest probe size known to be dropped (`max + 1` until a drop is
    /// observed).
    hi: usize,
    outstanding: Option<usize>,
}

impl MtuProbe {
    /// Starts discovery knowing the path carries at least `min` bytes and
    /// at most `max` bytes.
    ///
    /// # Panics
    /// Panics when `min > max`.
    pub fn new(min: usize, max: usize) -> Self {
        assert!(min <= max, "inverted probe bounds");
        MtuProbe {
            lo: min,
            hi: max + 1,
            outstanding: None,
        }
    }

    /// The next probe size to send, or `None` when discovery converged.
    pub fn next_probe(&mut self) -> Option<usize> {
        if let Some(p) = self.outstanding {
            return Some(p); // retransmit the unanswered probe
        }
        if self.lo + 1 >= self.hi {
            return None;
        }
        let mid = self.lo + (self.hi - self.lo) / 2;
        self.outstanding = Some(mid);
        Some(mid)
    }

    /// Reports a probe outcome: `delivered == true` when an echo for the
    /// probe of `size` bytes came back, `false` on timeout (dropped as
    /// oversize somewhere along the path).
    pub fn report(&mut self, size: usize, delivered: bool) {
        if self.outstanding == Some(size) {
            self.outstanding = None;
        }
        if delivered {
            self.lo = self.lo.max(size);
        } else {
            self.hi = self.hi.min(size);
        }
    }

    /// The discovered path MTU, once converged.
    pub fn discovered(&self) -> Option<usize> {
        (self.lo + 1 >= self.hi && self.outstanding.is_none()).then_some(self.lo)
    }

    /// Maximum probes a discovery can take (the binary-search depth).
    pub fn max_probes(min: usize, max: usize) -> u32 {
        usize::BITS - (max - min).leading_zeros() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the probe against a path with the given true MTU; returns
    /// (discovered, probes used).
    fn discover(true_mtu: usize, min: usize, max: usize) -> (usize, u32) {
        let mut p = MtuProbe::new(min, max);
        let mut probes = 0;
        while let Some(size) = p.next_probe() {
            probes += 1;
            p.report(size, size <= true_mtu);
            assert!(probes < 64, "diverged");
        }
        (p.discovered().unwrap(), probes)
    }

    #[test]
    fn discovers_exact_mtu() {
        for mtu in [576, 1006, 1500, 4352, 9180] {
            let (got, _) = discover(mtu, 68, 65535);
            assert_eq!(got, mtu);
        }
    }

    #[test]
    fn probe_count_is_logarithmic() {
        let (_, probes) = discover(1500, 68, 65535);
        assert!(probes <= MtuProbe::max_probes(68, 65535));
        assert!(probes <= 17, "{probes} probes for a 16-bit range");
    }

    #[test]
    fn degenerate_range_converges_immediately() {
        let mut p = MtuProbe::new(1500, 1500);
        assert_eq!(p.next_probe(), None);
        assert_eq!(p.discovered(), Some(1500));
    }

    #[test]
    fn unanswered_probe_is_retransmitted() {
        let mut p = MtuProbe::new(100, 200);
        let first = p.next_probe().unwrap();
        // No report: asking again returns the same outstanding probe.
        assert_eq!(p.next_probe(), Some(first));
        p.report(first, false);
        let second = p.next_probe().unwrap();
        assert!(second < first);
    }

    #[test]
    fn mtu_at_range_edges() {
        assert_eq!(discover(68, 68, 65535).0, 68);
        assert_eq!(discover(65535, 68, 65535).0, 65535);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_bounds_panic() {
        MtuProbe::new(1500, 100);
    }
}
