//! Packet multiplexing and TYPE-field demultiplexing (Appendix A).
//!
//! "Packets are utilized more efficiently if multiple chunks can be carried
//! in a packet … this idea can be extended to packets that carry chunks
//! from multiple connections. Data, signaling information, and
//! acknowledgments can be combined in any combination" — which gives an
//! error-control protocol the efficiency of piggybacked acknowledgments
//! *without designing piggybacking into the protocol*.
//!
//! On the receive side, "chunks … can be demultiplexed via the TYPE field
//! and routed to the appropriate processing units"; [`ConnectionDemux`]
//! routes data and ED chunks to per-connection receivers, and acks and
//! signals to their handlers, in one pass.

use std::sync::Arc;

use chunks_core::chunk::Chunk;
use chunks_core::error::CoreError;
use chunks_core::label::ChunkType;
use chunks_core::packet::{pack, spans, unpack, validate, Packet};
use chunks_core::wire::decode_chunk_at;
use chunks_obs::{ObsSink, ShardSink};

use crate::ack::AckInfo;
use crate::conn::Signal;
use crate::receiver::{Receiver, RxEvent};
use crate::table::{ConnTable, TableConfig};

/// Collects chunks from any number of sources — data from several
/// connections, acks travelling the reverse direction, signalling — and
/// packs them into shared packets.
#[derive(Debug)]
pub struct PacketMux {
    mtu: usize,
    queue: Vec<Chunk>,
}

impl PacketMux {
    /// Creates a multiplexer for packets of at most `mtu` bytes.
    pub fn new(mtu: usize) -> Self {
        PacketMux {
            mtu,
            queue: Vec::new(),
        }
    }

    /// Number of chunks waiting.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Queues data (or any pre-built) chunks.
    pub fn enqueue_chunks(&mut self, chunks: impl IntoIterator<Item = Chunk>) {
        self.queue.extend(chunks);
    }

    /// Queues an acknowledgment for `conn_id` — it will ride whatever
    /// packet has room (piggybacking for free).
    pub fn enqueue_ack(&mut self, conn_id: u32, ack: &AckInfo) {
        self.queue.push(ack.to_chunk(conn_id));
    }

    /// Queues a connection signal.
    pub fn enqueue_signal(&mut self, signal: &Signal) {
        self.queue.push(signal.to_chunk());
    }

    /// Packs everything queued into packets and clears the queue.
    pub fn flush(&mut self) -> Result<Vec<Packet>, CoreError> {
        pack(std::mem::take(&mut self.queue), self.mtu)
    }
}

/// Events a demultiplexer surfaces beyond per-connection receiver events.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DemuxEvent {
    /// A receiver event for a registered connection.
    Connection {
        /// The connection the event belongs to.
        conn_id: u32,
        /// The receiver event.
        event: RxEvent,
    },
    /// An acknowledgment arrived for a connection we send on.
    Ack {
        /// The acknowledged connection.
        conn_id: u32,
        /// The acknowledgment.
        ack: AckInfo,
    },
    /// A connection signal arrived.
    Signal(Signal),
    /// A chunk referenced a connection no receiver is registered for.
    UnknownConnection {
        /// The unknown `C.ID`.
        conn_id: u32,
    },
}

/// Routes the chunks of incoming packets by `TYPE` and `C.ID` in a single
/// pass: data/ED to the matching [`Receiver`], acks and signals out as
/// events.
///
/// Receivers live in a [`ConnTable`] — the open-addressed, lifecycle-managed
/// connection table — so the serial demux scales to millions of live
/// connections with pooled admission, LRU eviction, and capacity
/// back-pressure. The classic `register`/`receiver`/`handle_packet` surface
/// is unchanged; [`Self::table`]/[`Self::table_mut`] expose the lifecycle
/// operations (admit, retire, idle sweep, stats).
#[derive(Debug, Default)]
pub struct ConnectionDemux {
    receivers: ConnTable,
    /// Chunks routed, by wire type byte (index = `ChunkType::to_u8`).
    pub routed: [u64; 5],
    /// Reused per-chunk event staging — keeps the steady state of
    /// [`Self::handle_packet_into`] allocation-free.
    scratch: Vec<RxEvent>,
}

impl ConnectionDemux {
    /// Creates an empty demultiplexer with an unbounded table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a demultiplexer over a table with the given sizing and
    /// eviction policy.
    pub fn with_table(cfg: TableConfig) -> Self {
        ConnectionDemux {
            receivers: ConnTable::new(cfg),
            routed: [0; 5],
            scratch: Vec::new(),
        }
    }

    /// Registers the receiver for a connection.
    pub fn register(&mut self, conn_id: u32, receiver: Receiver) {
        self.receivers.insert(conn_id, receiver, 0);
    }

    /// Access to a registered receiver.
    pub fn receiver(&self, conn_id: u32) -> Option<&Receiver> {
        self.receivers.get(conn_id)
    }

    /// Mutable access to a registered receiver.
    pub fn receiver_mut(&mut self, conn_id: u32) -> Option<&mut Receiver> {
        self.receivers.get_mut(conn_id)
    }

    /// Installs an observability sink on the connection table and on every
    /// currently registered receiver. When the sink exposes per-worker
    /// shard blocks ([`ObsSink::worker_shard`]), the demux records through
    /// its own shard — plain owner-writes on the hot path, folded into the
    /// root registry at the sink's flush barriers and on snapshot.
    /// Receivers admitted later inherit the sink through the caller's
    /// `reconfigure` closure, exactly as budgets and policies do.
    pub fn set_obs(&mut self, sink: Arc<dyn ObsSink>) {
        let sink = ShardSink::wrap(sink);
        self.receivers.set_obs(Arc::clone(&sink));
        for (_, rx) in self.receivers.iter_mut() {
            rx.set_obs(Arc::clone(&sink));
        }
    }

    /// The connection table: occupancy, stats, pressure.
    pub fn table(&self) -> &ConnTable {
        &self.receivers
    }

    /// Mutable table access for lifecycle operations: admission with pooled
    /// shells, explicit retirement, idle eviction sweeps.
    pub fn table_mut(&mut self) -> &mut ConnTable {
        &mut self.receivers
    }

    /// Handles one packet, routing every chunk it carries. Each data/ED
    /// chunk routed to a live receiver bumps that connection's LRU touch.
    pub fn handle_packet(&mut self, packet: &Packet, now: u64) -> Vec<DemuxEvent> {
        let mut events = Vec::new();
        self.handle_packet_into(packet, now, &mut events);
        events
    }

    /// Like [`Self::handle_packet`], appending into a caller-owned buffer.
    pub fn handle_packet_into(&mut self, packet: &Packet, now: u64, events: &mut Vec<DemuxEvent>) {
        let chunks = match unpack(packet) {
            Ok(c) => c,
            Err(_) => return,
        };
        for chunk in chunks {
            self.route_chunk(chunk, now, events);
        }
    }

    /// Zero-copy packet ingest: one validation scan, then a streaming span
    /// walk whose decoded payloads borrow the packet's `Bytes` — the serial
    /// twin of [`ParallelReceiver::ingest`](crate::parallel::ParallelReceiver::ingest)
    /// and the entry the million-connection scale harness drives. Identical
    /// routing to [`Self::handle_packet`]; a malformed chunk rejects the
    /// whole packet, exactly like `unpack`.
    pub fn ingest(&mut self, packet: &Packet, now: u64, events: &mut Vec<DemuxEvent>) {
        if validate(packet).is_err() {
            return;
        }
        for (at, _end) in spans(packet) {
            // The validation scan already vetted this span.
            let Ok((chunk, _)) = decode_chunk_at(&packet.bytes, at) else {
                continue;
            };
            self.route_chunk(chunk, now, events);
        }
    }

    /// Routes one decoded chunk — shared tail of both decode paths.
    fn route_chunk(&mut self, chunk: Chunk, now: u64, events: &mut Vec<DemuxEvent>) {
        self.routed[chunk.header.ty.to_u8() as usize] += 1;
        match chunk.header.ty {
            ChunkType::Ack => {
                if let Ok(ack) = AckInfo::from_chunk(&chunk) {
                    events.push(DemuxEvent::Ack {
                        conn_id: chunk.header.conn.id,
                        ack,
                    });
                }
            }
            ChunkType::Signal => {
                if let Ok(s) = Signal::from_chunk(&chunk) {
                    events.push(DemuxEvent::Signal(s));
                }
            }
            ChunkType::Data | ChunkType::ErrorDetection => {
                let conn_id = chunk.header.conn.id;
                let scratch = &mut self.scratch;
                match self.receivers.lookup(conn_id, now) {
                    Some(rx) => {
                        scratch.clear();
                        rx.handle_chunk_into(chunk, now, scratch);
                        for event in scratch.drain(..) {
                            events.push(DemuxEvent::Connection { conn_id, event });
                        }
                    }
                    None => events.push(DemuxEvent::UnknownConnection { conn_id }),
                }
            }
            ChunkType::Padding => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::ConnectionParams;
    use crate::receiver::DeliveryMode;
    use crate::sender::{Sender, SenderConfig};
    use chunks_wsc::InvariantLayout;

    fn params(conn_id: u32) -> ConnectionParams {
        ConnectionParams {
            conn_id,
            elem_size: 1,
            initial_csn: 0,
            tpdu_elements: 8,
        }
    }

    fn layout() -> InvariantLayout {
        InvariantLayout::with_data_symbols(1024)
    }

    fn sender(conn_id: u32) -> Sender {
        Sender::new(SenderConfig {
            params: params(conn_id),
            layout: layout(),
            mtu: 1500,
            min_tpdu_elements: 2,
            max_tpdu_elements: 64,
        })
    }

    #[test]
    fn two_connections_share_packets() {
        let mut tx1 = sender(1);
        let mut tx2 = sender(2);
        tx1.submit_simple(b"alpha___", 0xA, false);
        tx2.submit_simple(b"beta____", 0xB, false);

        let mut mux = PacketMux::new(1500);
        for tx in [&tx1, &tx2] {
            for p in tx.packets_for_pending().unwrap() {
                mux.enqueue_chunks(unpack(&p).unwrap());
            }
        }
        let packets = mux.flush().unwrap();
        assert_eq!(packets.len(), 1, "both connections share one envelope");

        let mut demux = ConnectionDemux::new();
        demux.register(
            1,
            Receiver::new(DeliveryMode::Immediate, params(1), layout(), 256),
        );
        demux.register(
            2,
            Receiver::new(DeliveryMode::Immediate, params(2), layout(), 256),
        );
        let events = demux.handle_packet(&packets[0], 0);
        let delivered: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                DemuxEvent::Connection {
                    conn_id,
                    event: RxEvent::TpduDelivered { .. },
                } => Some(*conn_id),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![1, 2]);
        assert_eq!(&demux.receiver(1).unwrap().app_data()[..8], b"alpha___");
        assert_eq!(&demux.receiver(2).unwrap().app_data()[..8], b"beta____");
    }

    #[test]
    fn acks_piggyback_on_data_packets() {
        // The reverse-direction node has data of its own to send plus an
        // ack for what it received: both ride one packet.
        let mut tx = sender(3);
        tx.submit_simple(b"reverse!", 0xC, false);
        let ack = AckInfo {
            cumulative: 512,
            sacks: vec![1024],
            gaps: vec![],
            need_ed: vec![],
            pressure: false,
        };
        let mut mux = PacketMux::new(1500);
        for p in tx.packets_for_pending().unwrap() {
            mux.enqueue_chunks(unpack(&p).unwrap());
        }
        mux.enqueue_ack(9, &ack);
        let packets = mux.flush().unwrap();
        assert_eq!(packets.len(), 1, "ack costs no extra packet");

        let mut demux = ConnectionDemux::new();
        demux.register(
            3,
            Receiver::new(DeliveryMode::Immediate, params(3), layout(), 256),
        );
        let events = demux.handle_packet(&packets[0], 0);
        assert!(events.iter().any(|e| matches!(
            e,
            DemuxEvent::Ack { conn_id: 9, ack: a } if a.cumulative == 512
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            DemuxEvent::Connection {
                conn_id: 3,
                event: RxEvent::TpduDelivered { .. }
            }
        )));
    }

    #[test]
    fn signals_routed_and_counted() {
        let sig = Signal::Establish(crate::conn::ConnectionParams {
            conn_id: 7,
            elem_size: 4,
            initial_csn: 0,
            tpdu_elements: 128,
        });
        let mut mux = PacketMux::new(1500);
        mux.enqueue_signal(&sig);
        let packets = mux.flush().unwrap();
        let mut demux = ConnectionDemux::new();
        let events = demux.handle_packet(&packets[0], 0);
        assert_eq!(events, vec![DemuxEvent::Signal(sig)]);
        assert_eq!(demux.routed[ChunkType::Signal.to_u8() as usize], 1);
    }

    #[test]
    fn unknown_connection_reported() {
        let mut tx = sender(42);
        tx.submit_simple(b"lost____", 0xD, false);
        let packets = tx.packets_for_pending().unwrap();
        let mut demux = ConnectionDemux::new();
        let events = demux.handle_packet(&packets[0], 0);
        assert!(events
            .iter()
            .any(|e| matches!(e, DemuxEvent::UnknownConnection { conn_id: 42 })));
    }

    #[test]
    fn empty_mux_flushes_nothing() {
        let mut mux = PacketMux::new(1500);
        assert!(mux.flush().unwrap().is_empty());
        assert_eq!(mux.pending(), 0);
    }
}
