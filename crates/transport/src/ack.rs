//! Acknowledgment encoding for the error-control loop.
//!
//! Acks are ordinary control chunks, so they share packets with data
//! travelling the other way — chunks give piggybacking "without requiring
//! the explicit design of piggybacking into the error control protocol"
//! (Appendix A).

use bytes::Bytes;
use chunks_core::chunk::{Chunk, ChunkHeader};
use chunks_core::error::CoreError;
use chunks_core::label::{ChunkType, FramingTuple};

/// Receiver feedback: a cumulative point, selectively-acknowledged TPDU
/// starts beyond it, and the precise element ranges still missing (so the
/// sender can retransmit *fragments*, not whole TPDUs — chunks make
/// sub-PDU retransmission natural because extracted sub-chunks are just
/// chunks, Appendix C).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AckInfo {
    /// All elements below this connection-space index have been verified
    /// and delivered.
    pub cumulative: u64,
    /// Starts of TPDUs verified beyond the cumulative point (selective
    /// acknowledgment).
    pub sacks: Vec<u64>,
    /// Connection-space element ranges known to be missing (negative
    /// acknowledgment list for selective retransmission).
    pub gaps: Vec<(u64, u64)>,
    /// Starts of TPDUs whose data is complete but whose ED control chunk
    /// never arrived — the sender need only re-send the 8-byte digest.
    pub need_ed: Vec<u64>,
    /// Back-pressure: the receiver's resource budget is near exhaustion and
    /// repairs should be deferred, not hammered — retransmitting into a
    /// buffer that will shed the bytes is pure livelock.
    pub pressure: bool,
}

impl AckInfo {
    /// True when the TPDU spanning `[start, end)` is fully acknowledged by
    /// this ack — below the cumulative point or selectively acknowledged.
    pub fn acknowledges(&self, start: u64, end: u64) -> bool {
        end <= self.cumulative || self.sacks.contains(&start)
    }

    /// Encodes the ack payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.sacks.len() * 8 + self.gaps.len() * 16);
        out.extend_from_slice(&self.cumulative.to_be_bytes());
        out.extend_from_slice(&(self.sacks.len() as u16).to_be_bytes());
        for s in &self.sacks {
            out.extend_from_slice(&s.to_be_bytes());
        }
        out.extend_from_slice(&(self.gaps.len() as u16).to_be_bytes());
        for (lo, hi) in &self.gaps {
            out.extend_from_slice(&lo.to_be_bytes());
            out.extend_from_slice(&hi.to_be_bytes());
        }
        out.extend_from_slice(&(self.need_ed.len() as u16).to_be_bytes());
        for s in &self.need_ed {
            out.extend_from_slice(&s.to_be_bytes());
        }
        out.push(self.pressure as u8);
        out
    }

    /// Decodes an ack payload.
    pub fn decode(buf: &[u8]) -> Option<AckInfo> {
        if buf.len() < 12 {
            return None;
        }
        let cumulative = u64::from_be_bytes(buf[..8].try_into().ok()?);
        let n = u16::from_be_bytes(buf[8..10].try_into().ok()?) as usize;
        let gaps_at = 10 + n * 8;
        if buf.len() < gaps_at + 2 {
            return None;
        }
        let sacks = (0..n)
            .map(|i| u64::from_be_bytes(buf[10 + i * 8..18 + i * 8].try_into().unwrap()))
            .collect();
        let g = u16::from_be_bytes(buf[gaps_at..gaps_at + 2].try_into().ok()?) as usize;
        let ed_at = gaps_at + 2 + g * 16;
        if buf.len() < ed_at + 2 {
            return None;
        }
        let gaps = (0..g)
            .map(|i| {
                let at = gaps_at + 2 + i * 16;
                (
                    u64::from_be_bytes(buf[at..at + 8].try_into().unwrap()),
                    u64::from_be_bytes(buf[at + 8..at + 16].try_into().unwrap()),
                )
            })
            .collect();
        let e = u16::from_be_bytes(buf[ed_at..ed_at + 2].try_into().ok()?) as usize;
        if buf.len() != ed_at + 2 + e * 8 + 1 {
            return None;
        }
        let need_ed = (0..e)
            .map(|i| {
                let at = ed_at + 2 + i * 8;
                u64::from_be_bytes(buf[at..at + 8].try_into().unwrap())
            })
            .collect();
        let pressure = match buf[ed_at + 2 + e * 8] {
            0 => false,
            1 => true,
            _ => return None,
        };
        Some(AckInfo {
            cumulative,
            sacks,
            gaps,
            need_ed,
            pressure,
        })
    }

    /// Wraps the ack in a control chunk for `conn_id`.
    pub fn to_chunk(&self, conn_id: u32) -> Chunk {
        let payload = self.encode();
        Chunk::new(
            ChunkHeader::control(
                ChunkType::Ack,
                payload.len() as u16,
                FramingTuple::new(conn_id, 0, false),
                FramingTuple::new(0, 0, false),
                FramingTuple::new(0, 0, false),
            ),
            Bytes::from(payload),
        )
        .expect("ack chunk is consistent")
    }

    /// Extracts an ack from a control chunk.
    pub fn from_chunk(chunk: &Chunk) -> Result<AckInfo, CoreError> {
        if chunk.header.ty != ChunkType::Ack {
            return Err(CoreError::BadType(chunk.header.ty.to_u8()));
        }
        AckInfo::decode(&chunk.payload).ok_or(CoreError::Truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty_and_full() {
        for ack in [
            AckInfo::default(),
            AckInfo {
                cumulative: 1024,
                sacks: vec![2048, 4096, 1 << 40],
                gaps: vec![(1500, 1600), (3000, 3001)],
                need_ed: vec![4096],
                pressure: true,
            },
        ] {
            assert_eq!(AckInfo::decode(&ack.encode()), Some(ack.clone()));
            let c = ack.to_chunk(7);
            assert_eq!(AckInfo::from_chunk(&c).unwrap(), ack);
        }
    }

    #[test]
    fn truncation_rejected() {
        let ack = AckInfo {
            cumulative: 5,
            sacks: vec![10],
            gaps: vec![(20, 30)],
            need_ed: vec![40],
            pressure: false,
        };
        let buf = ack.encode();
        assert_eq!(AckInfo::decode(&buf[..buf.len() - 1]), None);
        assert_eq!(AckInfo::decode(&buf[..4]), None);
        // The pressure byte is strictly 0 or 1.
        let mut junk = buf.clone();
        *junk.last_mut().unwrap() = 7;
        assert_eq!(AckInfo::decode(&junk), None);
    }

    #[test]
    fn wrong_type_rejected() {
        let ack = AckInfo::default().to_chunk(1);
        let mut wrong = ack.clone();
        wrong.header.ty = ChunkType::Signal;
        assert!(AckInfo::from_chunk(&wrong).is_err());
    }
}
