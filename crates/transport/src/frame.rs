//! Sender-side framing: stream → labelled chunks + ED control chunk.
//!
//! Figure 1's situation is the input: one data stream carrying two framing
//! structures at once — TPDUs for error control and external (ALF) frames
//! for the application. The framer walks the stream, starting a new chunk
//! whenever *any* frame boundary occurs ("each time any frame boundary
//! occurs, a new chunk header is needed", Appendix A), and emits one
//! WSC-2 ED chunk per TPDU computed over the fragmentation invariant.

use bytes::Bytes;
use chunks_core::chunk::{Chunk, ChunkHeader};
use chunks_core::label::{ChunkType, FramingTuple};
use chunks_wsc::{InvariantLayout, TpduInvariant};

use crate::conn::ConnectionParams;

/// An external (Application Layer Framing) frame: `len_elements` data
/// elements processed as one application unit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AlfFrame {
    /// External PDU identifier (`X.ID`).
    pub id: u32,
    /// Frame length in data elements.
    pub len_elements: u32,
}

/// One framed TPDU: its data chunks and its ED control chunk.
#[derive(Clone, Debug)]
pub struct Tpdu {
    /// Connection-space element index of the TPDU's first element,
    /// relative to the connection's initial `C.SN` (monotonic, unwrapped).
    pub start: u64,
    /// Explicit TPDU identifier used in the labels.
    pub t_id: u32,
    /// Number of data elements.
    pub elements: u32,
    /// The data chunks, in order.
    pub chunks: Vec<Chunk>,
    /// The error-detection control chunk (WSC-2 digest over the invariant).
    pub ed: Chunk,
}

impl Tpdu {
    /// All chunks including the ED chunk, in send order (the ED chunk
    /// follows the data as in Figure 3).
    pub fn all_chunks(&self) -> Vec<Chunk> {
        let mut v = self.chunks.clone();
        v.push(self.ed.clone());
        v
    }

    /// Payload bytes carried.
    pub fn payload_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.payload.len()).sum()
    }
}

/// Stateful framer for one connection's send direction.
#[derive(Debug)]
pub struct Framer {
    params: ConnectionParams,
    layout: InvariantLayout,
    /// Elements framed so far (drives `C.SN` and TPDU starts).
    sent_elements: u64,
    next_t_id: u32,
    /// Remaining elements of a partially-framed external frame carried over
    /// from the previous `frame_stream` call, with the `X.SN` it resumes at.
    open_alf: Option<(AlfFrame, u32)>,
}

impl Framer {
    /// Creates a framer.
    pub fn new(params: ConnectionParams, layout: InvariantLayout) -> Self {
        Framer {
            params,
            layout,
            sent_elements: 0,
            next_t_id: 1,
            open_alf: None,
        }
    }

    /// The connection parameters.
    pub fn params(&self) -> ConnectionParams {
        self.params
    }

    /// Changes the TPDU size used for *future* framing — the knob the
    /// sender's loss adapter turns (§3).
    pub fn set_tpdu_elements(&mut self, elements: u32) {
        assert!(elements > 0, "TPDU size must be positive");
        self.params.tpdu_elements = elements;
    }

    /// Elements framed so far.
    pub fn sent_elements(&self) -> u64 {
        self.sent_elements
    }

    /// Current `C.SN` (wrapping).
    pub fn current_csn(&self) -> u32 {
        self.params
            .initial_csn
            .wrapping_add(self.sent_elements as u32)
    }

    /// Frames `data` into TPDUs of at most `params.tpdu_elements` elements.
    ///
    /// `alf` lists the external frames covering the data (an open frame from
    /// a previous call is continued first). `close` sets `C.ST` on the last
    /// element — the connection ends.
    ///
    /// # Panics
    /// Panics when `data` is not a whole number of elements, or the ALF
    /// frames do not cover exactly the data (callers control both).
    pub fn frame_stream(&mut self, data: &[u8], alf: &[AlfFrame], close: bool) -> Vec<Tpdu> {
        let esize = self.params.elem_size as usize;
        assert_eq!(data.len() % esize, 0, "data must be whole elements");
        let total_elements = (data.len() / esize) as u64;
        let covered: u64 = alf.iter().map(|f| f.len_elements as u64).sum::<u64>()
            + self
                .open_alf
                .map(|(f, _)| f.len_elements as u64)
                .unwrap_or(0);
        // The last frame may extend past this call's data; it stays open and
        // is continued by the next call.
        assert!(covered >= total_elements, "ALF frames must cover the data");

        // Flatten ALF boundaries into a queue of (id, remaining_elements).
        let mut frames: Vec<AlfFrame> = Vec::new();
        // X.SN progress per frame id persists across chunks of this call —
        // and across calls, for a frame left open by the previous call.
        let mut x_progress: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        if let Some((open, resume_sn)) = self.open_alf.take() {
            frames.push(open);
            x_progress.insert(open.id, resume_sn);
        }
        frames.extend_from_slice(alf);
        frames.retain(|f| f.len_elements > 0);
        let mut frame_idx = 0usize;

        let data = Bytes::copy_from_slice(data);
        let mut out = Vec::new();
        let mut consumed = 0u64; // elements consumed from `data`
        while consumed < total_elements {
            let tpdu_len = (self.params.tpdu_elements as u64).min(total_elements - consumed) as u32;
            let start = self.sent_elements;
            let t_id = self.next_t_id;
            self.next_t_id = self.next_t_id.wrapping_add(1);

            let mut chunks = Vec::new();
            let mut t_off = 0u32; // T.SN cursor within the TPDU
            while t_off < tpdu_len {
                let f = &mut frames[frame_idx];
                let take = f.len_elements.min(tpdu_len - t_off);
                let x_sn = *x_progress.entry(f.id).or_insert(0);
                let ends_frame = take == f.len_elements;
                let ends_tpdu = t_off + take == tpdu_len;
                let last_of_stream = consumed + (t_off + take) as u64 == total_elements;
                let c_sn = self
                    .params
                    .initial_csn
                    .wrapping_add((start + t_off as u64) as u32);
                let byte0 = (consumed + t_off as u64) as usize * esize;
                let byte1 = byte0 + take as usize * esize;
                let header = ChunkHeader::data(
                    self.params.elem_size,
                    take,
                    FramingTuple::new(self.params.conn_id, c_sn, close && last_of_stream),
                    FramingTuple::new(t_id, t_off, ends_tpdu),
                    FramingTuple::new(f.id, x_sn, ends_frame),
                );
                chunks.push(
                    Chunk::new(header, data.slice(byte0..byte1))
                        .expect("framer produces consistent chunks"),
                );
                f.len_elements -= take;
                if f.len_elements == 0 {
                    x_progress.remove(&f.id);
                    frame_idx += 1;
                } else {
                    *x_progress.get_mut(&f.id).unwrap() = x_sn + take;
                }
                t_off += take;
            }

            // ED chunk: WSC-2 over the invariant of exactly these chunks.
            // The framer feeds them in order, so the streaming encoder under
            // TpduInvariant keeps perfect cursor contiguity — the sender-side
            // digest costs one Horner sweep over the TPDU.
            let mut inv = TpduInvariant::new(self.layout).expect("layout fits");
            for c in &chunks {
                inv.absorb_chunk(&c.header, &c.payload)
                    .expect("framer stays inside the layout");
            }
            let start_csn = self.params.initial_csn.wrapping_add(start as u32);
            let ed = Chunk::new(
                ChunkHeader::control(
                    ChunkType::ErrorDetection,
                    8,
                    FramingTuple::new(self.params.conn_id, start_csn, false),
                    FramingTuple::new(t_id, 0, false),
                    FramingTuple::new(0, 0, false),
                ),
                Bytes::copy_from_slice(&inv.digest()),
            )
            .expect("ED chunk is consistent");

            out.push(Tpdu {
                start,
                t_id,
                elements: tpdu_len,
                chunks,
                ed,
            });
            consumed += tpdu_len as u64;
            self.sent_elements += tpdu_len as u64;
        }
        // Remember a frame cut short by the end of the data, with the X.SN
        // it must resume at.
        if let Some(f) = frames.get(frame_idx) {
            if f.len_elements > 0 {
                let resume_sn = x_progress.get(&f.id).copied().unwrap_or(0);
                self.open_alf = Some((*f, resume_sn));
            }
        }
        out
    }

    /// Frames a stream as a single external frame spanning all of it.
    pub fn frame_simple(&mut self, data: &[u8], x_id: u32, close: bool) -> Vec<Tpdu> {
        let elements = (data.len() / self.params.elem_size as usize) as u32;
        self.frame_stream(
            data,
            &[AlfFrame {
                id: x_id,
                len_elements: elements,
            }],
            close,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunks_core::label::Level;

    fn params(elem_size: u16, tpdu_elements: u32) -> ConnectionParams {
        ConnectionParams {
            conn_id: 0xA,
            elem_size,
            initial_csn: 100,
            tpdu_elements,
        }
    }

    fn small_layout() -> InvariantLayout {
        InvariantLayout::with_data_symbols(4096)
    }

    #[test]
    fn single_tpdu_single_frame() {
        let mut f = Framer::new(params(1, 16), small_layout());
        let tpdus = f.frame_simple(b"hello world!", 0xF, false);
        assert_eq!(tpdus.len(), 1);
        let t = &tpdus[0];
        assert_eq!(t.elements, 12);
        assert_eq!(t.chunks.len(), 1);
        let h = &t.chunks[0].header;
        assert_eq!(h.conn.sn, 100);
        assert_eq!(h.tpdu.sn, 0);
        assert!(h.tpdu.st && h.ext.st && !h.conn.st);
        assert_eq!(t.ed.header.ty, ChunkType::ErrorDetection);
        assert_eq!(t.ed.header.conn.sn, 100);
        assert_eq!(t.ed.header.tpdu.id, t.t_id);
    }

    #[test]
    fn tpdu_boundaries_advance_csn() {
        let mut f = Framer::new(params(1, 4), small_layout());
        let tpdus = f.frame_simple(&[0u8; 10], 0xF, false);
        assert_eq!(tpdus.len(), 3); // 4 + 4 + 2
        assert_eq!(tpdus[0].start, 0);
        assert_eq!(tpdus[1].start, 4);
        assert_eq!(tpdus[2].start, 8);
        assert_eq!(tpdus[1].chunks[0].header.conn.sn, 104);
        assert_eq!(tpdus[1].chunks[0].header.tpdu.sn, 0);
        // The external frame spans all TPDUs; X.SN continues.
        assert_eq!(tpdus[1].chunks[0].header.ext.sn, 4);
        assert!(!tpdus[0].chunks[0].header.ext.st);
        assert!(tpdus[2].chunks[0].header.ext.st);
        assert_eq!(f.sent_elements(), 10);
        assert_eq!(f.current_csn(), 110);
    }

    #[test]
    fn alf_boundaries_cut_chunks_figure1() {
        // Figure 1: a stream framed by two ALF frames inside one TPDU.
        let mut f = Framer::new(params(1, 10), small_layout());
        let tpdus = f.frame_stream(
            &[7u8; 10],
            &[
                AlfFrame {
                    id: 0xAA,
                    len_elements: 6,
                },
                AlfFrame {
                    id: 0xBB,
                    len_elements: 4,
                },
            ],
            false,
        );
        assert_eq!(tpdus.len(), 1);
        let chunks = &tpdus[0].chunks;
        assert_eq!(chunks.len(), 2, "a new chunk at each frame boundary");
        assert_eq!(chunks[0].header.ext.id, 0xAA);
        assert!(chunks[0].header.ext.st);
        assert!(!chunks[0].header.tpdu.st);
        assert_eq!(chunks[1].header.ext.id, 0xBB);
        assert_eq!(chunks[1].header.tpdu.sn, 6);
        assert!(chunks[1].header.tpdu.st && chunks[1].header.ext.st);
    }

    #[test]
    fn close_sets_cst_on_final_element_only() {
        let mut f = Framer::new(params(1, 4), small_layout());
        let tpdus = f.frame_simple(&[1u8; 8], 0xF, true);
        assert!(!tpdus[0].chunks.last().unwrap().header.conn.st);
        assert!(tpdus[1].chunks.last().unwrap().header.conn.st);
    }

    #[test]
    fn ed_digest_matches_receiver_side_invariant() {
        let mut f = Framer::new(params(2, 8), small_layout());
        let tpdus = f.frame_simple(&[9u8; 16], 0xF, false);
        let t = &tpdus[0];
        let mut inv = TpduInvariant::new(small_layout()).unwrap();
        for c in &t.chunks {
            inv.absorb_chunk(&c.header, &c.payload).unwrap();
        }
        assert_eq!(&t.ed.payload[..], &inv.digest());
    }

    #[test]
    fn alf_frame_spanning_calls_is_continued() {
        let mut f = Framer::new(params(1, 100), small_layout());
        let first = f.frame_stream(
            &[1u8; 4],
            &[AlfFrame {
                id: 0xCC,
                len_elements: 10,
            }],
            false,
        );
        assert!(!first[0].chunks[0].header.ext.st, "frame still open");
        let second = f.frame_stream(&[2u8; 6], &[], false);
        let h = &second[0].chunks[0].header;
        assert_eq!(h.ext.id, 0xCC);
        assert_eq!(h.ext.sn, 4, "X.SN continues across calls");
        assert!(h.ext.st);
    }

    #[test]
    fn csn_wraps_across_u32() {
        let mut f = Framer::new(
            ConnectionParams {
                conn_id: 1,
                elem_size: 1,
                initial_csn: u32::MAX - 2,
                tpdu_elements: 4,
            },
            small_layout(),
        );
        let tpdus = f.frame_simple(&[0u8; 8], 0xF, false);
        assert_eq!(tpdus[0].chunks[0].header.conn.sn, u32::MAX - 2);
        assert_eq!(tpdus[1].chunks[0].header.conn.sn, 1); // wrapped
        assert_eq!(tpdus[1].chunks[0].header.tuple(Level::Tpdu).sn, 0);
    }

    #[test]
    #[should_panic(expected = "whole elements")]
    fn partial_elements_rejected() {
        let mut f = Framer::new(params(4, 8), small_layout());
        f.frame_simple(&[0u8; 7], 1, false);
    }

    #[test]
    #[should_panic(expected = "cover the data")]
    fn mismatched_alf_cover_rejected() {
        let mut f = Framer::new(params(1, 8), small_layout());
        f.frame_stream(
            &[0u8; 5],
            &[AlfFrame {
                id: 1,
                len_elements: 3,
            }],
            false,
        );
    }
}
