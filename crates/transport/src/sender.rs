//! The sending side: windowing, packetization, retransmission, and TPDU
//! size adaptation.
//!
//! Two behaviours come straight from the paper:
//!
//! * "Retransmitted data should use the same identifiers as the originally
//!   transmitted data" (§3.3) — retransmission re-sends the *same* labelled
//!   TPDU, so fragments of the original and the retransmission mix freely
//!   at the receiver.
//! * "A good transport protocol implementation should reduce its TPDU size
//!   to match the observed network error rate without any direct knowledge
//!   of whether fragmentation is occurring" (§3) — the sender halves its
//!   TPDU size on loss feedback and creeps it back up on success.

use std::collections::BTreeMap;

use chunks_core::error::CoreError;
use chunks_core::packet::{pack, Packet};

use crate::ack::AckInfo;
use crate::conn::ConnectionParams;
use crate::frame::{AlfFrame, Framer, Tpdu};
use chunks_wsc::InvariantLayout;

/// Sender configuration.
#[derive(Clone, Copy, Debug)]
pub struct SenderConfig {
    /// Connection parameters (shared with the receiver at establishment).
    pub params: ConnectionParams,
    /// Invariant layout for error detection.
    pub layout: InvariantLayout,
    /// Path MTU the sender packs packets for.
    pub mtu: usize,
    /// Smallest TPDU the adapter may shrink to, in elements.
    pub min_tpdu_elements: u32,
    /// Largest TPDU the adapter may grow to, in elements.
    pub max_tpdu_elements: u32,
}

/// The chunk transport sender for one connection.
#[derive(Debug)]
pub struct Sender {
    cfg: SenderConfig,
    framer: Framer,
    /// Unacknowledged TPDUs by connection-space start.
    pending: BTreeMap<u64, Tpdu>,
    /// Current adaptive TPDU size in elements.
    tpdu_elements: u32,
    /// TPDUs retransmitted.
    pub retransmissions: u64,
    /// TPDUs shed by the reliability layer after their retry budget emptied
    /// (graceful degradation: the window keeps moving without them).
    pub shed: u64,
}

impl Sender {
    /// Creates a sender.
    pub fn new(cfg: SenderConfig) -> Self {
        let params = ConnectionParams {
            tpdu_elements: cfg.params.tpdu_elements,
            ..cfg.params
        };
        Sender {
            tpdu_elements: cfg.params.tpdu_elements,
            framer: Framer::new(params, cfg.layout),
            cfg,
            pending: BTreeMap::new(),
            retransmissions: 0,
            shed: 0,
        }
    }

    /// The current adaptive TPDU size in elements.
    pub fn tpdu_elements(&self) -> u32 {
        self.tpdu_elements
    }

    /// Number of unacknowledged TPDUs.
    pub fn pending_tpdus(&self) -> usize {
        self.pending.len()
    }

    /// Queues application data (covered by `alf` frames) for transmission.
    /// Returns the newly framed TPDUs' starts.
    pub fn submit(&mut self, data: &[u8], alf: &[AlfFrame], close: bool) -> Vec<u64> {
        // The framer's TPDU size follows the loss adapter.
        self.framer.set_tpdu_elements(self.tpdu_elements);
        let tpdus = self.framer.frame_stream(data, alf, close);
        let mut starts = Vec::with_capacity(tpdus.len());
        for t in tpdus {
            starts.push(t.start);
            self.pending.insert(t.start, t);
        }
        starts
    }

    /// Convenience: queue data as one external frame.
    pub fn submit_simple(&mut self, data: &[u8], x_id: u32, close: bool) -> Vec<u64> {
        let elements = (data.len() / self.cfg.params.elem_size as usize) as u32;
        self.submit(
            data,
            &[AlfFrame {
                id: x_id,
                len_elements: elements,
            }],
            close,
        )
    }

    /// Packs every pending TPDU into packets for the path MTU (the initial
    /// transmission or a full retransmission pass).
    pub fn packets_for_pending(&self) -> Result<Vec<Packet>, CoreError> {
        let chunks = self
            .pending
            .values()
            .flat_map(|t| t.all_chunks())
            .collect::<Vec<_>>();
        pack(chunks, self.cfg.mtu)
    }

    /// Packs the TPDUs named by `starts` for retransmission — identical
    /// identifiers, as §3.3 requires.
    pub fn retransmit(&mut self, starts: &[u64]) -> Result<Vec<Packet>, CoreError> {
        let mut chunks = Vec::new();
        for s in starts {
            if let Some(t) = self.pending.get(s) {
                chunks.extend(t.all_chunks());
                self.retransmissions += 1;
            }
        }
        pack(chunks, self.cfg.mtu)
    }

    /// Applies an acknowledgment; returns the starts newly confirmed.
    pub fn handle_ack(&mut self, ack: &AckInfo) -> Vec<u64> {
        let mut confirmed = Vec::new();
        let acked: Vec<u64> = self
            .pending
            .iter()
            .filter(|(&s, t)| ack.acknowledges(s, s + t.elements as u64))
            .map(|(&s, _)| s)
            .collect();
        for s in acked {
            self.pending.remove(&s);
            confirmed.push(s);
        }
        confirmed
    }

    /// Starts of TPDUs still awaiting acknowledgment.
    pub fn unacked_starts(&self) -> Vec<u64> {
        self.pending.keys().copied().collect()
    }

    /// True while the TPDU at `start` awaits acknowledgment.
    pub fn is_pending(&self, start: u64) -> bool {
        self.pending.contains_key(&start)
    }

    /// Abandons an unacked TPDU: the reliability layer's graceful
    /// degradation when a retry budget empties. The TPDU leaves the window
    /// (so `pending_tpdus` can reach zero and the stream keeps moving) and
    /// is counted in [`Self::shed`]. Returns true when the TPDU existed.
    pub fn abandon(&mut self, start: u64) -> bool {
        if self.pending.remove(&start).is_some() {
            self.shed += 1;
            true
        } else {
            false
        }
    }

    /// Re-sends only the 8-byte ED chunks of the named TPDUs (the data
    /// arrived; the digest did not).
    pub fn retransmit_eds(&mut self, starts: &[u64]) -> Result<Vec<Packet>, CoreError> {
        let chunks: Vec<_> = starts
            .iter()
            .filter_map(|s| self.pending.get(s).map(|t| t.ed.clone()))
            .collect();
        if !chunks.is_empty() {
            self.retransmissions += 1;
        }
        pack(chunks, self.cfg.mtu)
    }

    /// Answers a full receiver report: sub-chunks for the named gaps,
    /// missing ED chunks, and — for pending TPDUs the report does not
    /// mention at all (their packets vanished before the receiver learned
    /// they exist, so it cannot nack what it never saw) — a full
    /// retransmission. Receiver-side duplicate trimming (Appendix C
    /// extraction) discards any overlap cheaply.
    pub fn retransmit_for_ack(
        &mut self,
        ack: &crate::ack::AckInfo,
    ) -> Result<Vec<Packet>, CoreError> {
        self.retransmit_for_ack_limited(ack, usize::MAX)
    }

    /// [`Self::retransmit_for_ack`] with window-limited repair: at most
    /// `max_tpdus` pending TPDUs (in connection-space order) are repaired
    /// per call, so a pathological gap report cannot make one call
    /// retransmit the whole stream in a single burst. The remaining TPDUs
    /// are picked up by later calls (or by the retransmission timer).
    pub fn retransmit_for_ack_limited(
        &mut self,
        ack: &crate::ack::AckInfo,
        max_tpdus: usize,
    ) -> Result<Vec<Packet>, CoreError> {
        self.retransmit_for_ack_parts(ack, max_tpdus)
            .map(|(packets, _)| packets)
    }

    /// [`Self::retransmit_for_ack_limited`], also reporting which TPDU
    /// starts were repaired (so the reliability layer can re-arm their
    /// retransmission timers).
    pub fn retransmit_for_ack_parts(
        &mut self,
        ack: &crate::ack::AckInfo,
        max_tpdus: usize,
    ) -> Result<(Vec<Packet>, Vec<u64>), CoreError> {
        let mut chunks = Vec::new();
        let mut repaired: Vec<u64> = Vec::new();
        for (&start, tpdu) in &self.pending {
            if repaired.len() >= max_tpdus {
                break;
            }
            let end = start + tpdu.elements as u64;
            if ack.acknowledges(start, end) {
                continue; // acknowledged, nothing to repair
            }
            repaired.push(start);
            if ack.need_ed.contains(&start) {
                // Data arrived; only the 8-byte digest is missing.
                chunks.push(tpdu.ed.clone());
                continue;
            }
            let overlapping: Vec<(u64, u64)> = ack
                .gaps
                .iter()
                .filter(|&&(lo, hi)| lo < end && start < hi)
                .copied()
                .collect();
            if overlapping.is_empty() {
                // The report does not mention this TPDU at all: its packets
                // vanished before the receiver learned they exist, so it
                // cannot nack what it never saw. Full retransmission.
                chunks.extend(tpdu.all_chunks());
                continue;
            }
            // Precise sub-chunk repair (Appendix C extraction); the ED chunk
            // rides along so a receiver that lost it can still verify.
            for &(lo, hi) in &overlapping {
                let want_lo = lo.max(start);
                let want_hi = hi.min(end);
                if want_lo >= want_hi {
                    continue;
                }
                for c in &tpdu.chunks {
                    // Chunk covers [c_lo, c_hi) in connection space.
                    let c_lo = start + c.header.tpdu.sn as u64;
                    let c_hi = c_lo + c.header.len as u64;
                    let take_lo = want_lo.max(c_lo);
                    let take_hi = want_hi.min(c_hi);
                    if take_lo >= take_hi {
                        continue;
                    }
                    chunks.push(chunks_core::frag::extract(
                        c,
                        (take_lo - c_lo) as u32,
                        (take_hi - take_lo) as u32,
                    )?);
                }
            }
            chunks.push(tpdu.ed.clone());
        }
        self.retransmissions += repaired.len() as u64;
        Ok((pack(chunks, self.cfg.mtu)?, repaired))
    }

    /// Retransmits only the element ranges a receiver reported missing —
    /// sub-chunks extracted per Appendix C, each a perfectly ordinary chunk
    /// with identical labels. The TPDU's ED chunk rides along so a receiver
    /// that lost it can still verify.
    pub fn retransmit_gaps(&mut self, gaps: &[(u64, u64)]) -> Result<Vec<Packet>, CoreError> {
        let mut chunks = Vec::new();
        let mut touched: Vec<u64> = Vec::new();
        for &(lo, hi) in gaps {
            for (&start, tpdu) in self.pending.range(..hi) {
                let end = start + tpdu.elements as u64;
                if end <= lo {
                    continue;
                }
                let want_lo = lo.max(start);
                let want_hi = hi.min(end);
                if want_lo >= want_hi {
                    continue;
                }
                for c in &tpdu.chunks {
                    // Chunk covers [c_lo, c_hi) in connection space.
                    let c_lo = start + c.header.tpdu.sn as u64;
                    let c_hi = c_lo + c.header.len as u64;
                    let take_lo = want_lo.max(c_lo);
                    let take_hi = want_hi.min(c_hi);
                    if take_lo >= take_hi {
                        continue;
                    }
                    let piece = chunks_core::frag::extract(
                        c,
                        (take_lo - c_lo) as u32,
                        (take_hi - take_lo) as u32,
                    )?;
                    chunks.push(piece);
                }
                if !touched.contains(&start) {
                    touched.push(start);
                    chunks.push(tpdu.ed.clone());
                }
            }
        }
        if !chunks.is_empty() {
            self.retransmissions += 1;
        }
        pack(chunks, self.cfg.mtu)
    }

    /// Loss feedback: halve the TPDU size (multiplicative decrease), so
    /// fewer bytes are retransmitted per lost fragment.
    pub fn on_loss(&mut self) {
        self.tpdu_elements = (self.tpdu_elements / 2).max(self.cfg.min_tpdu_elements);
    }

    /// Success feedback: grow the TPDU size additively.
    pub fn on_success(&mut self) {
        self.tpdu_elements =
            (self.tpdu_elements + self.cfg.min_tpdu_elements).min(self.cfg.max_tpdu_elements);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::{DeliveryMode, Receiver, RxEvent};

    fn cfg(mtu: usize, tpdu_elements: u32) -> SenderConfig {
        SenderConfig {
            params: ConnectionParams {
                conn_id: 0xA,
                elem_size: 1,
                initial_csn: 100,
                tpdu_elements,
            },
            layout: InvariantLayout::with_data_symbols(4096),
            mtu,
            min_tpdu_elements: 2,
            max_tpdu_elements: 1024,
        }
    }

    fn rx(c: &SenderConfig) -> Receiver {
        Receiver::new(DeliveryMode::Immediate, c.params, c.layout, 1 << 16)
    }

    #[test]
    fn submit_send_deliver() {
        let c = cfg(128, 8);
        let mut s = Sender::new(c);
        let mut r = rx(&c);
        let starts = s.submit_simple(b"hello, chunk world!!", 0xF, false);
        assert_eq!(starts, vec![0, 8, 16]);
        let mut delivered = Vec::new();
        for p in s.packets_for_pending().unwrap() {
            for e in r.handle_packet(&p, 0) {
                if let RxEvent::TpduDelivered { start, .. } = e {
                    delivered.push(start);
                }
            }
        }
        delivered.sort_unstable();
        assert_eq!(delivered, vec![0, 8, 16]);
        assert_eq!(&r.app_data()[..20], b"hello, chunk world!!");
        // Ack clears the window.
        let ack = r.make_ack();
        assert_eq!(ack.cumulative, 20);
        let confirmed = s.handle_ack(&ack);
        assert_eq!(confirmed.len(), 3);
        assert_eq!(s.pending_tpdus(), 0);
    }

    #[test]
    fn retransmit_uses_identical_identifiers() {
        let c = cfg(128, 8);
        let mut s = Sender::new(c);
        s.submit_simple(b"abcdefgh", 0xF, false);
        let first = s.packets_for_pending().unwrap();
        let again = s.retransmit(&[0]).unwrap();
        assert_eq!(first, again, "identical labels, identical packets");
        assert_eq!(s.retransmissions, 1);
    }

    #[test]
    fn lost_tpdu_recovered_via_ack_loop() {
        let c = cfg(64, 8);
        let mut s = Sender::new(c);
        let mut r = rx(&c);
        s.submit_simple(&[7u8; 24], 0xF, false);
        // Drop every packet carrying data for TPDU at start 8.
        let packets = s.packets_for_pending().unwrap();
        for (i, p) in packets.iter().enumerate() {
            if i == 1 {
                continue; // "lost"
            }
            r.handle_packet(p, 0);
        }
        let ack1 = r.make_ack();
        s.handle_ack(&ack1);
        let missing = s.unacked_starts();
        assert!(!missing.is_empty());
        for p in s.retransmit(&missing).unwrap() {
            r.handle_packet(&p, 1);
        }
        let ack2 = r.make_ack();
        assert_eq!(ack2.cumulative, 24);
        s.handle_ack(&ack2);
        assert_eq!(s.pending_tpdus(), 0);
        assert_eq!(&r.app_data()[..24], &[7u8; 24][..]);
    }

    #[test]
    fn tpdu_size_adapts_to_loss() {
        let c = cfg(128, 64);
        let mut s = Sender::new(c);
        assert_eq!(s.tpdu_elements(), 64);
        s.on_loss();
        assert_eq!(s.tpdu_elements(), 32);
        s.on_loss();
        s.on_loss();
        s.on_loss();
        s.on_loss();
        assert_eq!(s.tpdu_elements(), 2, "floored at min");
        for _ in 0..10 {
            s.on_success();
        }
        assert_eq!(s.tpdu_elements(), 22);
        // New submissions use the adapted size.
        let starts = s.submit_simple(&[1u8; 44], 0xF, false);
        assert_eq!(starts, vec![0, 22]);
    }

    #[test]
    fn successive_submits_continue_sequence_space() {
        let c = cfg(256, 8);
        let mut s = Sender::new(c);
        let mut r = rx(&c);
        let s1 = s.submit_simple(b"aaaaaaaa", 1, false);
        let s2 = s.submit_simple(b"bbbbbbbb", 2, false);
        assert_eq!(s1, vec![0]);
        assert_eq!(s2, vec![8]);
        for p in s.packets_for_pending().unwrap() {
            r.handle_packet(&p, 0);
        }
        assert_eq!(&r.app_data()[..16], b"aaaaaaaabbbbbbbb");
        assert_eq!(r.make_ack().cumulative, 16);
    }
}
