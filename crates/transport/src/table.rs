//! Compact open-addressed connection table — the million-connection demux.
//!
//! The paper's labelling argument (§3.3, Appendix A) is that a chunk's
//! `C.ID` carries everything demultiplexing needs; what remains for a
//! *production* receiver is to make the `C.ID → receiver` step scale to
//! millions of live connections without per-connection pointer chases or
//! allocator traffic. [`ConnTable`] is that step:
//!
//! * **Layout** — one flat power-of-two slot array (`key`, slab index,
//!   last-touch virtual time: 16 bytes per slot) indexing a slab of pooled
//!   [`Receiver`] state. The index is rebuilt in place on growth; receivers
//!   never move, so `&mut Receiver` borrows stay cheap and eviction keeps
//!   warm state around for the next admission.
//! * **Probing** — Fibonacci multiplicative hashing (the same constant as
//!   [`shard_of`](crate::parallel::shard_of)) picks the home slot;
//!   robin-hood displacement keeps probe sequences short and *bounded*:
//!   a lookup may stop as soon as it meets an entry closer to home than
//!   itself. Deletion backward-shifts the cluster, so no tombstones ever
//!   accumulate.
//! * **Lifecycle** — admission re-arms a quiesced shell from the free pool
//!   (zero allocations in steady state); eviction is deterministic
//!   sampled-LRU by virtual clock (a clock hand scans a fixed number of
//!   occupied slots and evicts the minimum `(touch, C.ID)`), plus a full
//!   idle sweep for timer-driven expiry. Capacity pressure surfaces through
//!   [`ConnTable::under_pressure`], feeding the same back-pressure bit the
//!   byte budgets drive.
//!
//! Everything is deterministic: same admissions, same touches, same
//! configuration ⇒ same evictions, byte for byte — the property
//! `experiments scale` replays and `tests/scale_determinism.rs` pins.

use std::sync::Arc;

use chunks_obs::{Event, ObsSink};

use crate::conn::ConnectionParams;
use crate::receiver::Receiver;

/// Slab/slot sentinel: no entry.
const EMPTY: u32 = u32::MAX;

/// Fibonacci multiplicative hash constant (2^64 / φ), shared with
/// [`shard_of`](crate::parallel::shard_of) so the table and the worker
/// shards agree on how `C.ID`s spread.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// One index slot: the connection label, where its receiver lives in the
/// slab, and when it was last touched (virtual clock) for LRU ordering.
#[derive(Clone, Copy, Debug)]
struct Slot {
    key: u32,
    idx: u32,
    touch: u64,
}

impl Slot {
    const VACANT: Slot = Slot {
        key: 0,
        idx: EMPTY,
        touch: 0,
    };
}

/// Table sizing and eviction policy.
#[derive(Clone, Copy, Debug)]
pub struct TableConfig {
    /// Initial slot-array capacity (rounded up to a power of two, min 8).
    pub initial_capacity: usize,
    /// Maximum live connections; admission beyond this evicts the sampled
    /// LRU connection first. `usize::MAX` = unbounded (the default).
    pub max_live: usize,
    /// How many occupied slots the eviction clock hand examines per
    /// eviction. Larger samples approximate true LRU more closely at
    /// proportionally more scan work.
    pub lru_sample: usize,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            initial_capacity: 8,
            max_live: usize::MAX,
            lru_sample: 8,
        }
    }
}

impl TableConfig {
    /// Unbounded table pre-sized for `n` connections.
    pub fn for_capacity(n: usize) -> Self {
        TableConfig {
            initial_capacity: n,
            ..Self::default()
        }
    }

    /// Bounds the live-connection count.
    pub fn with_max_live(mut self, max_live: usize) -> Self {
        self.max_live = max_live;
        self
    }
}

/// Table lifecycle counters. Field names track the `chunks-obs` catalogue
/// (`transport.table.*`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TableStats {
    /// Connections admitted (fresh or pooled).
    pub admissions: u64,
    /// Admissions that re-armed a pooled shell instead of allocating.
    pub pooled_admissions: u64,
    /// Connections evicted (capacity, idle sweep, or explicit retire).
    pub evictions: u64,
    /// Admissions refused because the table was full and nothing was
    /// evictable.
    pub refusals: u64,
    /// Times [`ConnTable::under_pressure`] crossed from false to true — a
    /// degradation trigger for the flight recorder.
    pub pressure_crossings: u64,
    /// Index-array doublings.
    pub grows: u64,
    /// High-water mark of live connections.
    pub peak_live: usize,
    /// Longest probe sequence any insert ever walked.
    pub max_probe: u64,
}

impl TableStats {
    /// The counters as `(catalogue name, value)` pairs, named exactly as
    /// the `chunks-obs` registry exports them. `pooled_admissions`,
    /// `grows`, `peak_live` and `max_probe` have no registry twin (the
    /// latter two ride the occupancy and probe-length histograms instead).
    pub fn as_metrics(&self) -> [(&'static str, u64); 4] {
        [
            ("transport.table.admissions", self.admissions),
            ("transport.table.evictions", self.evictions),
            ("transport.table.refusals", self.refusals),
            (
                "transport.table.pressure_crossings",
                self.pressure_crossings,
            ),
        ]
    }
}

/// Outcome of [`ConnTable::admit`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AdmitOutcome {
    /// A new connection was admitted (false: already present, or refused).
    pub admitted: bool,
    /// The admission re-armed a pooled shell (no allocation).
    pub pooled: bool,
    /// The `C.ID` evicted to make room, if the table was at `max_live`.
    pub evicted: Option<u32>,
    /// The table was full and nothing was evictable.
    pub refused: bool,
}

/// The open-addressed `C.ID → Receiver` table. See the module docs for the
/// design; see `docs/SCALE.md` for the full treatment.
pub struct ConnTable {
    /// The open-addressed index. Power-of-two length.
    slots: Vec<Slot>,
    mask: usize,
    live: usize,
    /// Receiver slab: never reordered, so slab indices stay stable across
    /// index growth and eviction.
    receivers: Vec<Receiver>,
    /// `C.ID` per slab entry (`EMPTY` for pooled shells) — lets iteration
    /// and drain walk the slab without consulting the index.
    slab_keys: Vec<u32>,
    /// Quiesced shells awaiting re-arm, most recently retired last.
    free: Vec<u32>,
    /// Eviction clock hand: where the next LRU sample scan starts.
    hand: usize,
    cfg: TableConfig,
    /// Lifecycle counters.
    pub stats: TableStats,
    obs: Arc<dyn ObsSink>,
    obs_on: bool,
    /// Last observed [`Self::under_pressure`] value; a false→true edge is
    /// counted and reported as a degradation trigger.
    was_pressured: bool,
}

impl std::fmt::Debug for ConnTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnTable")
            .field("live", &self.live)
            .field("capacity", &self.slots.len())
            .field("pooled", &self.free.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Default for ConnTable {
    fn default() -> Self {
        Self::new(TableConfig::default())
    }
}

impl ConnTable {
    /// Creates an empty table.
    pub fn new(cfg: TableConfig) -> Self {
        let cap = slot_count_for(cfg.initial_capacity);
        ConnTable {
            slots: vec![Slot::VACANT; cap],
            mask: cap - 1,
            live: 0,
            receivers: Vec::new(),
            slab_keys: Vec::new(),
            free: Vec::new(),
            hand: 0,
            cfg,
            stats: TableStats::default(),
            obs: chunks_obs::null(),
            obs_on: false,
            was_pressured: false,
        }
    }

    /// Installs an observability sink (admissions, evictions, occupancy and
    /// probe-length distributions flow to the `transport.table.*` registry).
    pub fn set_obs(&mut self, sink: Arc<dyn ObsSink>) {
        self.obs_on = sink.enabled();
        self.obs = sink;
    }

    /// Live connections.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no connection is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Current slot-array capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Quiesced shells available for allocation-free admission.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// The configured policy.
    pub fn config(&self) -> &TableConfig {
        &self.cfg
    }

    /// True when occupancy reached ¾ of `max_live` — the same threshold the
    /// byte budgets use for the acknowledgment back-pressure bit.
    pub fn under_pressure(&self) -> bool {
        self.cfg.max_live != usize::MAX && self.live * 4 >= self.cfg.max_live * 3
    }

    /// True when `conn_id` is live.
    pub fn contains(&self, conn_id: u32) -> bool {
        self.find(conn_id).is_some()
    }

    /// The receiver for `conn_id`, if live. Does not bump the LRU touch.
    pub fn get(&self, conn_id: u32) -> Option<&Receiver> {
        self.find(conn_id)
            .map(|pos| &self.receivers[self.slots[pos].idx as usize])
    }

    /// Mutable access without an LRU touch (tests, merge, snapshots).
    pub fn get_mut(&mut self, conn_id: u32) -> Option<&mut Receiver> {
        self.find(conn_id)
            .map(|pos| &mut self.receivers[self.slots[pos].idx as usize])
    }

    /// Hot-path access: finds the receiver and stamps the connection's LRU
    /// touch with `now` in the same probe.
    pub fn lookup(&mut self, conn_id: u32, now: u64) -> Option<&mut Receiver> {
        let pos = self.find(conn_id)?;
        self.slots[pos].touch = now;
        Some(&mut self.receivers[self.slots[pos].idx as usize])
    }

    /// Registers an externally built receiver, replacing any live one under
    /// the same `C.ID`. Evicts the sampled-LRU connection first when at
    /// `max_live`.
    pub fn insert(&mut self, conn_id: u32, receiver: Receiver, now: u64) {
        if let Some(pos) = self.find(conn_id) {
            let idx = self.slots[pos].idx as usize;
            self.receivers[idx] = receiver;
            self.slots[pos].touch = now;
            return;
        }
        if self.live >= self.cfg.max_live {
            self.evict_lru(now, "capacity");
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.receivers[i as usize] = receiver;
                i
            }
            None => {
                self.receivers.push(receiver);
                self.slab_keys.push(EMPTY);
                (self.receivers.len() - 1) as u32
            }
        };
        self.slab_keys[idx as usize] = conn_id;
        self.index_insert(conn_id, idx, now);
        self.note_admission(conn_id, false, now);
    }

    /// Admits a connection: re-arms a pooled shell when one is available
    /// (`reconfigure` then applies per-connection policy/budget/obs to it),
    /// otherwise builds a fresh receiver with `fresh`. At `max_live` the
    /// sampled-LRU connection is evicted first; if nothing is evictable the
    /// admission is refused and counted.
    pub fn admit(
        &mut self,
        params: ConnectionParams,
        now: u64,
        fresh: impl FnOnce() -> Receiver,
        reconfigure: impl FnOnce(&mut Receiver),
    ) -> AdmitOutcome {
        let conn_id = params.conn_id;
        if let Some(pos) = self.find(conn_id) {
            self.slots[pos].touch = now;
            return AdmitOutcome {
                admitted: false,
                pooled: false,
                evicted: None,
                refused: false,
            };
        }
        let mut evicted = None;
        if self.live >= self.cfg.max_live {
            evicted = self.evict_lru(now, "capacity");
            if evicted.is_none() {
                self.stats.refusals += 1;
                if self.obs_on {
                    self.obs.counter("transport.table.refusals", 1);
                }
                return AdmitOutcome {
                    admitted: false,
                    pooled: false,
                    evicted: None,
                    refused: true,
                };
            }
        }
        let (idx, pooled) = match self.free.pop() {
            Some(i) => {
                let rx = &mut self.receivers[i as usize];
                rx.rearm(params);
                reconfigure(rx);
                (i, true)
            }
            None => {
                self.receivers.push(fresh());
                self.slab_keys.push(EMPTY);
                ((self.receivers.len() - 1) as u32, false)
            }
        };
        self.slab_keys[idx as usize] = conn_id;
        self.index_insert(conn_id, idx, now);
        self.note_admission(conn_id, pooled, now);
        AdmitOutcome {
            admitted: true,
            pooled,
            evicted,
            refused: false,
        }
    }

    /// Retires a live connection: quiesces its receiver into the shell pool
    /// (budget bytes released, state cleared, capacity kept) and removes its
    /// index entry. Returns false when `conn_id` is not live.
    pub fn retire(&mut self, conn_id: u32, now: u64) -> bool {
        match self.find(conn_id) {
            Some(pos) => {
                self.evict_at(pos, now, "retire");
                true
            }
            None => false,
        }
    }

    /// Evicts every connection last touched strictly before `before`.
    /// Returns how many were evicted.
    pub fn evict_idle(&mut self, before: u64, now: u64) -> usize {
        let mut evicted = 0;
        let mut pos = 0;
        while pos < self.slots.len() {
            let s = self.slots[pos];
            if s.idx != EMPTY && s.touch < before {
                self.evict_at(pos, now, "idle");
                evicted += 1;
                // The backward shift may have moved the cluster's next entry
                // into `pos`: re-examine the same slot before advancing.
            } else {
                pos += 1;
            }
        }
        evicted
    }

    /// Evicts the least-recently-touched of a deterministic sample of
    /// occupied slots (clock hand, `lru_sample` wide; ties break on the
    /// smaller `C.ID`). Returns the evicted `C.ID`, or `None` on an empty
    /// table.
    pub fn evict_lru(&mut self, now: u64, cause: &'static str) -> Option<u32> {
        if self.live == 0 {
            return None;
        }
        let want = self.cfg.lru_sample.max(1).min(self.live);
        let mut best: Option<(u64, u32, usize)> = None;
        let mut seen = 0usize;
        let mut scanned = 0usize;
        let mut pos = self.hand & self.mask;
        while seen < want && scanned < self.slots.len() {
            let s = self.slots[pos];
            if s.idx != EMPTY {
                seen += 1;
                if best.is_none_or(|(t, k, _)| (s.touch, s.key) < (t, k)) {
                    best = Some((s.touch, s.key, pos));
                }
            }
            pos = (pos + 1) & self.mask;
            scanned += 1;
        }
        self.hand = pos;
        best.map(|(_, _, p)| self.evict_at(p, now, cause))
    }

    /// Iterates live connections in slot order (not sorted).
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Receiver)> {
        let receivers = &self.receivers;
        self.slab_keys
            .iter()
            .enumerate()
            .filter_map(move |(i, &k)| {
                if k == EMPTY {
                    None
                } else {
                    Some((k, &receivers[i]))
                }
            })
    }

    /// Mutable iteration over live connections in slab order (not sorted).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u32, &mut Receiver)> {
        let ConnTable {
            slab_keys,
            receivers,
            ..
        } = self;
        receivers.iter_mut().enumerate().filter_map(move |(i, rx)| {
            let k = slab_keys[i];
            if k == EMPTY {
                None
            } else {
                Some((k, rx))
            }
        })
    }

    /// Consumes the table, yielding every live connection's receiver sorted
    /// by `C.ID` — the merge stage's drain. Pooled shells are dropped.
    pub fn into_entries(self) -> Vec<(u32, Receiver)> {
        let mut v: Vec<(u32, Receiver)> = self
            .receivers
            .into_iter()
            .zip(self.slab_keys)
            .filter_map(|(rx, k)| if k == EMPTY { None } else { Some((k, rx)) })
            .collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Home slot for `key`: top bits of the Fibonacci product, masked.
    #[inline]
    fn home(&self, key: u32) -> usize {
        (((key as u64).wrapping_mul(FIB)) >> 32) as usize & self.mask
    }

    /// How far the entry at `pos` sits from its home slot.
    #[inline]
    fn displacement(&self, pos: usize) -> usize {
        (pos + self.slots.len() - self.home(self.slots[pos].key)) & self.mask
    }

    /// Finds the slot holding `key`. Robin-hood invariant: stop as soon as
    /// an entry closer to home than our probe distance appears — `key`
    /// cannot be further along.
    fn find(&self, key: u32) -> Option<usize> {
        if self.live == 0 {
            return None;
        }
        let mut pos = self.home(key);
        let mut disp = 0usize;
        loop {
            let s = self.slots[pos];
            if s.idx == EMPTY {
                return None;
            }
            if s.key == key {
                return Some(pos);
            }
            if self.displacement(pos) < disp {
                return None;
            }
            pos = (pos + 1) & self.mask;
            disp += 1;
        }
    }

    /// Robin-hood insertion of a slot already known to be absent.
    fn place(&mut self, mut cur: Slot) {
        let mut pos = self.home(cur.key);
        let mut disp = 0usize;
        let mut probe = 1u64;
        loop {
            if self.slots[pos].idx == EMPTY {
                self.slots[pos] = cur;
                break;
            }
            let their = self.displacement(pos);
            if their < disp {
                // Rob the rich: the incumbent is closer to home; it yields
                // its slot and continues probing with our displacement.
                std::mem::swap(&mut self.slots[pos], &mut cur);
                disp = their;
            }
            pos = (pos + 1) & self.mask;
            disp += 1;
            probe += 1;
        }
        self.stats.max_probe = self.stats.max_probe.max(probe);
        if self.obs_on {
            self.obs.observe("transport.table.probe_len", probe);
        }
    }

    /// Inserts an index entry, growing first when load would pass 7/8.
    fn index_insert(&mut self, key: u32, idx: u32, touch: u64) {
        if (self.live + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        self.place(Slot { key, idx, touch });
        self.live += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.live);
    }

    /// Doubles the index array and re-places every entry. The receiver slab
    /// is untouched — only the 16-byte index slots move.
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![Slot::VACANT; new_len]);
        self.mask = new_len - 1;
        self.stats.grows += 1;
        for s in old {
            if s.idx != EMPTY {
                self.place(s);
            }
        }
    }

    /// Removes the index entry at `pos` by backward-shifting the cluster:
    /// successors displaced from their home move one slot back until an
    /// empty slot or an at-home entry ends the cluster. No tombstones.
    fn index_remove_at(&mut self, mut pos: usize) {
        loop {
            let next = (pos + 1) & self.mask;
            let s = self.slots[next];
            if s.idx == EMPTY || self.displacement(next) == 0 {
                self.slots[pos] = Slot::VACANT;
                return;
            }
            self.slots[pos] = s;
            pos = next;
        }
    }

    /// Evicts the connection at slot `pos`: quiesce its receiver into the
    /// pool, drop the index entry, count and trace the eviction.
    fn evict_at(&mut self, pos: usize, now: u64, cause: &'static str) -> u32 {
        let Slot { key, idx, touch } = self.slots[pos];
        self.receivers[idx as usize].quiesce();
        self.slab_keys[idx as usize] = EMPTY;
        self.free.push(idx);
        self.index_remove_at(pos);
        self.live -= 1;
        self.stats.evictions += 1;
        if self.obs_on {
            self.obs.counter("transport.table.evictions", 1);
            self.obs.event(
                now,
                Event::ConnEvicted {
                    conn_id: key,
                    idle: now.saturating_sub(touch),
                    cause,
                },
            );
        }
        self.note_pressure(now);
        key
    }

    fn note_admission(&mut self, conn_id: u32, pooled: bool, now: u64) {
        self.stats.admissions += 1;
        if pooled {
            self.stats.pooled_admissions += 1;
        }
        if self.obs_on {
            self.obs.counter("transport.table.admissions", 1);
            self.obs
                .observe("transport.table.occupancy", self.live as u64);
            self.obs.event(
                now,
                Event::ConnAdmitted {
                    conn_id,
                    occupancy: self.live as u32,
                },
            );
        }
        self.note_pressure(now);
    }

    /// Re-samples [`Self::under_pressure`] after `live` changed; a
    /// false→true edge is a degradation trigger (counted, and reported to
    /// the sink so an always-on flight recorder can capture a postmortem).
    fn note_pressure(&mut self, now: u64) {
        let pressured = self.under_pressure();
        if pressured && !self.was_pressured {
            self.stats.pressure_crossings += 1;
            if self.obs_on {
                self.obs.counter("transport.table.pressure_crossings", 1);
                self.obs.degraded(now, "pressure-crossing", 0);
            }
        }
        self.was_pressured = pressured;
    }
}

/// Rounds a wanted live-connection capacity up to the slot count that keeps
/// load below 7/8: the next power of two past `n * 8 / 7`, at least 8.
fn slot_count_for(n: usize) -> usize {
    (n.max(7) * 8 / 7).next_power_of_two()
}

/// Open-addressed `C.ID` membership set — the dispatcher's "is this
/// connection registered?" check, O(1) instead of the `Vec::contains` scan
/// it replaces. Linear probing, backward-shift deletion, power-of-two
/// capacity; each slot stores `key + 1` (0 = empty) in a `u64`.
#[derive(Clone, Debug)]
pub struct ConnSet {
    slots: Vec<u64>,
    mask: usize,
    live: usize,
}

impl Default for ConnSet {
    fn default() -> Self {
        Self::new()
    }
}

impl ConnSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::with_capacity(8)
    }

    /// An empty set pre-sized for `n` members.
    pub fn with_capacity(n: usize) -> Self {
        let cap = slot_count_for(n);
        ConnSet {
            slots: vec![0; cap],
            mask: cap - 1,
            live: 0,
        }
    }

    /// Members.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[inline]
    fn home(&self, key: u32) -> usize {
        (((key as u64).wrapping_mul(FIB)) >> 32) as usize & self.mask
    }

    fn find(&self, key: u32) -> Option<usize> {
        let stored = key as u64 + 1;
        let mut pos = self.home(key);
        loop {
            let v = self.slots[pos];
            if v == 0 {
                return None;
            }
            if v == stored {
                return Some(pos);
            }
            pos = (pos + 1) & self.mask;
        }
    }

    /// True when `key` is a member.
    pub fn contains(&self, key: u32) -> bool {
        self.find(key).is_some()
    }

    /// Adds `key`; false if it was already present.
    pub fn insert(&mut self, key: u32) -> bool {
        if self.contains(key) {
            return false;
        }
        if (self.live + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let stored = key as u64 + 1;
        let mut pos = self.home(key);
        while self.slots[pos] != 0 {
            pos = (pos + 1) & self.mask;
        }
        self.slots[pos] = stored;
        self.live += 1;
        true
    }

    /// Removes `key`; false if it was absent. Backward-shifts the probe
    /// cluster so lookups never need tombstones.
    pub fn remove(&mut self, key: u32) -> bool {
        let Some(mut pos) = self.find(key) else {
            return false;
        };
        self.live -= 1;
        let cap = self.slots.len();
        let mut next = (pos + 1) & self.mask;
        loop {
            let v = self.slots[next];
            if v == 0 {
                break;
            }
            let home = self.home((v - 1) as u32);
            // The entry at `next` may fill the hole at `pos` only if its
            // home lies at or cyclically before `pos` — otherwise moving it
            // would strand it before its own probe start.
            let dist_home = (next + cap - home) & self.mask;
            let dist_hole = (next + cap - pos) & self.mask;
            if dist_home >= dist_hole {
                self.slots[pos] = v;
                pos = next;
            }
            next = (next + 1) & self.mask;
        }
        self.slots[pos] = 0;
        true
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![0; new_len]);
        self.mask = new_len - 1;
        for v in old {
            if v != 0 {
                let key = (v - 1) as u32;
                let mut pos = self.home(key);
                while self.slots[pos] != 0 {
                    pos = (pos + 1) & self.mask;
                }
                self.slots[pos] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::DeliveryMode;
    use chunks_wsc::InvariantLayout;

    fn params(conn_id: u32) -> ConnectionParams {
        ConnectionParams {
            conn_id,
            elem_size: 1,
            initial_csn: 0,
            tpdu_elements: 8,
        }
    }

    fn rx(conn_id: u32) -> Receiver {
        Receiver::new(
            DeliveryMode::Immediate,
            params(conn_id),
            InvariantLayout::with_data_symbols(64),
            32,
        )
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut t = ConnTable::new(TableConfig::default());
        for id in 0..100u32 {
            t.insert(id, rx(id), id as u64);
        }
        assert_eq!(t.len(), 100);
        for id in 0..100u32 {
            assert!(t.contains(id));
            assert_eq!(t.get(id).unwrap().params().conn_id, id);
        }
        assert!(!t.contains(100));
        for id in (0..100u32).step_by(2) {
            assert!(t.retire(id, 200));
        }
        assert_eq!(t.len(), 50);
        for id in 0..100u32 {
            assert_eq!(t.contains(id), id % 2 == 1, "id {id}");
        }
        assert_eq!(t.stats.evictions, 50);
        assert_eq!(t.pooled(), 50);
    }

    #[test]
    fn growth_preserves_every_entry() {
        let mut t = ConnTable::new(TableConfig {
            initial_capacity: 8,
            ..TableConfig::default()
        });
        let before = t.capacity();
        for id in 0..4096u32 {
            t.insert(id.wrapping_mul(2_654_435_761), rx(id), 0);
        }
        assert!(t.capacity() > before);
        assert!(t.stats.grows > 0);
        for id in 0..4096u32 {
            assert!(t.contains(id.wrapping_mul(2_654_435_761)));
        }
    }

    #[test]
    fn pooled_admission_reuses_shells() {
        let mut t = ConnTable::new(TableConfig::default());
        t.insert(1, rx(1), 0);
        assert!(t.retire(1, 1));
        let out = t.admit(params(2), 2, || rx(2), |_| {});
        assert!(out.admitted && out.pooled, "{out:?}");
        assert_eq!(t.get(2).unwrap().params().conn_id, 2);
        let again = t.admit(params(2), 3, || rx(2), |_| {});
        assert!(!again.admitted && !again.refused, "already live: {again:?}");
    }

    #[test]
    fn capacity_bound_evicts_the_lru_connection() {
        let mut t = ConnTable::new(TableConfig::default().with_max_live(4));
        for id in 0..4u32 {
            let out = t.admit(params(id), id as u64, || rx(id), |_| {});
            assert!(out.admitted && out.evicted.is_none());
        }
        // Touch 0 so connection 1 becomes the oldest.
        assert!(t.lookup(0, 10).is_some());
        let out = t.admit(params(9), 11, || rx(9), |_| {});
        assert!(out.admitted);
        assert_eq!(out.evicted, Some(1), "least-recently-touched goes first");
        assert_eq!(t.len(), 4);
        assert!(t.under_pressure());
        assert_eq!(t.stats.refusals, 0);
    }

    #[test]
    fn idle_sweep_is_age_selective() {
        let mut t = ConnTable::new(TableConfig::default());
        for id in 0..64u32 {
            t.insert(id, rx(id), id as u64);
        }
        let evicted = t.evict_idle(32, 100);
        assert_eq!(evicted, 32);
        for id in 0..64u32 {
            assert_eq!(t.contains(id), id >= 32, "id {id}");
        }
    }

    #[test]
    fn into_entries_is_sorted_and_complete() {
        let mut t = ConnTable::new(TableConfig::default());
        for id in [9u32, 3, 7, 1, 5] {
            t.insert(id, rx(id), 0);
        }
        t.retire(7, 1);
        let ids: Vec<u32> = t.into_entries().into_iter().map(|(k, _)| k).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
    }

    #[test]
    fn conn_set_matches_a_naive_set() {
        let mut set = ConnSet::new();
        let mut oracle = std::collections::HashSet::new();
        let mut x = 0x1234_5678u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 40) as u32 & 0x3FF;
            match (x >> 1) % 3 {
                0 => assert_eq!(set.insert(key), oracle.insert(key), "insert {key}"),
                1 => assert_eq!(set.remove(key), oracle.remove(&key), "remove {key}"),
                _ => assert_eq!(set.contains(key), oracle.contains(&key), "contains {key}"),
            }
            assert_eq!(set.len(), oracle.len());
        }
    }
}
