//! Long-running streams: a sliding-window receiver with `C.SN` reuse.
//!
//! §2 treats the whole connection as one large PDU whose sequence numbers
//! "are reused over time" — a connection is not bounded by the 2^32 element
//! space. [`StreamReceiver`] realizes that: a fixed window of application
//! memory slides along the connection space, verified data is handed to the
//! application in order, and the window base advances so the same `C.SN`
//! values can come around again.
//!
//! Inside the window the engine is the immediate-processing receiver of
//! §3.3: chunks are placed into the (ring) address space on arrival in any
//! order, virtual reassembly tracks completion per TPDU, and the WSC-2
//! invariant verifies each TPDU against its ED chunk before its bytes may
//! leave the window.

use std::collections::BTreeMap;
use std::collections::HashMap;

use chunks_core::chunk::Chunk;
use chunks_core::label::ChunkType;
use chunks_core::packet::{unpack, Packet};
use chunks_vreasm::{PduTracker, TrackEvent};
use chunks_wsc::{InvariantLayout, TpduInvariant};

use crate::conn::ConnectionParams;
use crate::receiver::FailureReason;

/// Statistics kept by a [`StreamReceiver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamStats {
    /// Bytes delivered to the application, in order, verified.
    pub delivered_bytes: u64,
    /// TPDUs verified.
    pub tpdus_delivered: u64,
    /// TPDUs that failed verification.
    pub tpdus_failed: u64,
    /// Chunks rejected as stale (behind the window — old duplicates).
    pub stale_chunks: u64,
    /// Chunks rejected as beyond the window (sender overran flow control).
    pub overrun_chunks: u64,
    /// Duplicate chunks within the window.
    pub duplicate_chunks: u64,
    /// Times the window base advanced.
    pub window_advances: u64,
}

/// Per-TPDU state inside the window.
#[derive(Debug)]
struct Group {
    tracker: PduTracker,
    inv: TpduInvariant,
    ed: Option<[u8; 8]>,
    elements: u64,
    verified: bool,
    failed: Option<FailureReason>,
}

/// Sliding-window receiver for one long-running connection.
#[derive(Debug)]
pub struct StreamReceiver {
    params: ConnectionParams,
    layout: InvariantLayout,
    /// Window size in elements (power-of-two not required).
    window: u64,
    /// Ring of `window * elem_size` bytes; absolute element `e` lives at
    /// `(e % window) * elem_size`.
    ring: Vec<u8>,
    /// Absolute element index of the window base (total delivered).
    base_abs: u64,
    /// The `C.SN` corresponding to `base_abs` (wraps).
    base_csn: u32,
    /// Groups keyed by absolute TPDU start.
    groups: BTreeMap<u64, Group>,
    /// Delivered-but-not-yet-polled bytes.
    outbox: Vec<u8>,
    /// Per-group `C.SN − X.SN` consistency state.
    x_deltas: HashMap<(u64, u32), u32>,
    /// Accumulated statistics.
    pub stats: StreamStats,
}

impl StreamReceiver {
    /// Creates a stream receiver with a window of `window_elements`.
    pub fn new(params: ConnectionParams, layout: InvariantLayout, window_elements: u64) -> Self {
        assert!(window_elements > 0 && window_elements < (1 << 31));
        StreamReceiver {
            params,
            layout,
            window: window_elements,
            ring: vec![0; window_elements as usize * params.elem_size as usize],
            base_abs: 0,
            base_csn: params.initial_csn,
            groups: BTreeMap::new(),
            outbox: Vec::new(),
            x_deltas: HashMap::new(),
            stats: StreamStats::default(),
        }
    }

    /// Total verified bytes delivered so far.
    pub fn delivered(&self) -> u64 {
        self.stats.delivered_bytes
    }

    /// The current flow-control window: `(next expected C.SN, elements of
    /// room)` — what an ack would advertise.
    pub fn window_advert(&self) -> (u32, u64) {
        (self.base_csn, self.window)
    }

    /// Classifies a `C.SN` relative to the window. `Ok(abs)` is the
    /// absolute element index.
    fn unwrap_csn(&self, c_sn: u32) -> Result<u64, Place> {
        let rel = c_sn.wrapping_sub(self.base_csn);
        if (rel as u64) < self.window {
            Ok(self.base_abs + rel as u64)
        } else if rel >= 1 << 31 {
            Err(Place::Stale)
        } else {
            Err(Place::Beyond)
        }
    }

    /// Feeds a packet; verified in-order bytes accumulate in the outbox
    /// (fetch with [`Self::poll_delivered`]).
    pub fn handle_packet(&mut self, packet: &Packet, now: u64) {
        if let Ok(chunks) = unpack(packet) {
            for c in chunks {
                self.handle_chunk(c, now);
            }
        }
    }

    /// Feeds one chunk.
    pub fn handle_chunk(&mut self, chunk: Chunk, _now: u64) {
        match chunk.header.ty {
            ChunkType::Data => self.handle_data(chunk),
            ChunkType::ErrorDetection => self.handle_ed(chunk),
            _ => {}
        }
        self.advance();
    }

    fn group_entry(
        groups: &mut BTreeMap<u64, Group>,
        layout: InvariantLayout,
        start: u64,
    ) -> &mut Group {
        groups.entry(start).or_insert_with(|| Group {
            tracker: PduTracker::new(),
            inv: TpduInvariant::new(layout).expect("layout fits"),
            ed: None,
            elements: 0,
            verified: false,
            failed: None,
        })
    }

    fn handle_data(&mut self, chunk: Chunk) {
        let h = chunk.header;
        if h.size != self.params.elem_size || h.conn.id != self.params.conn_id {
            return;
        }
        let first = match self.unwrap_csn(h.conn.sn) {
            Ok(a) => a,
            Err(Place::Stale) => {
                self.stats.stale_chunks += 1;
                return;
            }
            Err(Place::Beyond) => {
                self.stats.overrun_chunks += 1;
                return;
            }
        };
        let len = h.len as u64;
        if first + len > self.base_abs + self.window {
            // Tail pokes out of the window: refuse whole (flow control).
            self.stats.overrun_chunks += 1;
            return;
        }
        let start = first - h.tpdu.sn as u64; // absolute TPDU start
        let group = Self::group_entry(&mut self.groups, self.layout, start);
        // Trim partial duplicates, as the block receiver does.
        let uncovered = group.tracker.uncovered(h.tpdu.sn as u64, len);
        if uncovered.is_empty() {
            self.stats.duplicate_chunks += 1;
            return;
        }
        if uncovered != [(h.tpdu.sn as u64, h.tpdu.sn as u64 + len)] {
            self.stats.duplicate_chunks += 1;
            for (lo, hi) in uncovered {
                let off = (lo - h.tpdu.sn as u64) as u32;
                if let Ok(piece) = chunks_core::frag::extract(&chunk, off, (hi - lo) as u32) {
                    self.handle_data(piece);
                }
            }
            return;
        }
        match group.tracker.offer(h.tpdu.sn as u64, len, h.tpdu.st) {
            TrackEvent::Duplicate => {
                self.stats.duplicate_chunks += 1;
                return;
            }
            TrackEvent::Inconsistent => {
                group.failed = Some(FailureReason::ReassemblyError);
                return;
            }
            TrackEvent::Accepted => {}
        }
        // X-level consistency.
        let x_delta = h.conn.sn.wrapping_sub(h.ext.sn);
        match self.x_deltas.get(&(start, h.ext.id)) {
            Some(&d) if d != x_delta => {
                let group = Self::group_entry(&mut self.groups, self.layout, start);
                group.failed = Some(FailureReason::Consistency);
                return;
            }
            Some(_) => {}
            None => {
                self.x_deltas.insert((start, h.ext.id), x_delta);
            }
        }
        let group = Self::group_entry(&mut self.groups, self.layout, start);
        if group.inv.absorb_chunk(&h, &chunk.payload).is_err() {
            group.failed = Some(FailureReason::EdMismatch);
            return;
        }
        group.elements += len;
        // Place into the ring (may straddle the wrap point).
        let esize = self.params.elem_size as usize;
        for (k, element) in chunk.payload.chunks(esize).enumerate() {
            let slot = ((first + k as u64) % self.window) as usize * esize;
            self.ring[slot..slot + esize].copy_from_slice(element);
        }
    }

    fn handle_ed(&mut self, chunk: Chunk) {
        if chunk.payload.len() != 8 || chunk.header.conn.id != self.params.conn_id {
            return;
        }
        let Ok(start) = self.unwrap_csn(chunk.header.conn.sn) else {
            self.stats.stale_chunks += 1;
            return;
        };
        let mut digest = [0u8; 8];
        digest.copy_from_slice(&chunk.payload);
        Self::group_entry(&mut self.groups, self.layout, start).ed = Some(digest);
    }

    /// Verifies completed groups and slides the window over in-order
    /// verified TPDUs, moving their bytes to the outbox.
    fn advance(&mut self) {
        // Verify any group that is complete and has its digest.
        for g in self.groups.values_mut() {
            if !g.verified && g.failed.is_none() && g.tracker.is_complete() {
                if let Some(d) = g.ed {
                    if g.inv.matches(d) {
                        g.verified = true;
                        self.stats.tpdus_delivered += 1;
                    } else {
                        g.failed = Some(FailureReason::EdMismatch);
                        self.stats.tpdus_failed += 1;
                    }
                }
            }
        }
        // Slide over verified groups sitting exactly at the base.
        while let Some((&start, g)) = self.groups.first_key_value() {
            if start != self.base_abs || !g.verified {
                break;
            }
            let elements = g.elements;
            let esize = self.params.elem_size as usize;
            for e in 0..elements {
                let slot = ((self.base_abs + e) % self.window) as usize * esize;
                self.outbox
                    .extend_from_slice(&self.ring[slot..slot + esize]);
            }
            self.stats.delivered_bytes += elements * esize as u64;
            self.groups.remove(&start);
            self.x_deltas.retain(|&(s, _), _| s != start);
            self.base_abs += elements;
            self.base_csn = self.base_csn.wrapping_add(elements as u32);
            self.stats.window_advances += 1;
        }
    }

    /// Takes the verified, in-order bytes accumulated since the last poll.
    pub fn poll_delivered(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.outbox)
    }

    /// Starts (absolute element index) of failed TPDUs awaiting a clean
    /// retransmission.
    pub fn failed_starts(&self) -> Vec<u64> {
        self.groups
            .iter()
            .filter(|(_, g)| g.failed.is_some())
            .map(|(&s, _)| s)
            .collect()
    }

    /// Clears a failed group so the retransmission can verify afresh.
    pub fn reset_group(&mut self, start: u64) {
        self.groups.remove(&start);
        self.x_deltas.retain(|&(s, _), _| s != start);
    }

    /// Builds the current acknowledgment for the window, in the same shape
    /// the block receiver produces: the delivered prefix is cumulative,
    /// verified-but-blocked groups are SACKed, incomplete groups report
    /// their precise missing ranges, and failed groups are re-nacked whole.
    /// This is what lets the reliability layer drive timer-based repair of
    /// a long-running stream exactly like a bounded transfer.
    pub fn make_ack(&self) -> crate::ack::AckInfo {
        let mut sacks: Vec<u64> = Vec::new();
        let mut gaps: Vec<(u64, u64)> = Vec::new();
        let mut need_ed: Vec<u64> = Vec::new();
        for (&start, g) in &self.groups {
            if g.verified {
                sacks.push(start);
            } else if g.failed.is_some() {
                // Verification failed: the whole TPDU must come again.
                gaps.push((start, start + g.elements.max(1)));
            } else {
                for (lo, hi) in g.tracker.missing() {
                    gaps.push((start + lo, start + hi));
                }
                if g.tracker.is_complete() && g.ed.is_none() {
                    need_ed.push(start);
                }
            }
        }
        gaps.sort_unstable();
        crate::ack::AckInfo {
            cumulative: self.base_abs,
            sacks,
            gaps,
            need_ed,
            // The stream receiver has no resource budget (its window is the
            // budget), so it never signals back-pressure.
            pressure: false,
        }
    }
}

enum Place {
    Stale,
    Beyond,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Framer;

    fn params(initial_csn: u32) -> ConnectionParams {
        ConnectionParams {
            conn_id: 0xCA,
            elem_size: 1,
            initial_csn,
            tpdu_elements: 8,
        }
    }

    fn layout() -> InvariantLayout {
        InvariantLayout::with_data_symbols(1024)
    }

    /// Streams `total` bytes through a window of `window` elements in
    /// TPDU-sized steps, delivering packets through `mangle`.
    fn stream_through(
        total: usize,
        window: u64,
        initial_csn: u32,
        mut mangle: impl FnMut(usize, &Chunk) -> Vec<Chunk>,
    ) -> (StreamReceiver, Vec<u8>, Vec<u8>) {
        let mut framer = Framer::new(params(initial_csn), layout());
        let mut rx = StreamReceiver::new(params(initial_csn), layout(), window);
        let mut sent = Vec::new();
        let mut received = Vec::new();
        let mut i = 0;
        while sent.len() < total {
            let block: Vec<u8> = (0..8).map(|k| ((sent.len() + k) % 251) as u8).collect();
            sent.extend_from_slice(&block);
            for t in framer.frame_simple(&block, 0xF, false) {
                for c in t.all_chunks() {
                    for m in mangle(i, &c) {
                        rx.handle_chunk(m, 0);
                        i += 1;
                    }
                }
            }
            received.extend(rx.poll_delivered());
        }
        let out = rx.poll_delivered();
        received.extend(out);
        (rx, sent, received)
    }

    #[test]
    fn unbounded_stream_through_small_window() {
        // 4 KiB through a 32-element window: the window must slide ~512
        // times; memory stays O(window).
        let (rx, sent, received) = stream_through(4096, 32, 0, |_, c| vec![c.clone()]);
        assert_eq!(received, sent);
        assert_eq!(rx.delivered(), 4096);
        assert!(rx.stats.window_advances >= 500);
    }

    #[test]
    fn csn_wraps_through_u32_boundary() {
        // Start near the top of the sequence space: C.SN wraps mid-stream
        // and the window keeps sliding.
        let (rx, sent, received) = stream_through(512, 64, u32::MAX - 100, |_, c| vec![c.clone()]);
        assert_eq!(received, sent);
        assert_eq!(rx.stats.overrun_chunks, 0);
        assert_eq!(rx.stats.stale_chunks, 0);
    }

    #[test]
    fn out_of_order_within_window() {
        // Swap the two data chunks of every pair of TPDUs.
        let mut held: Option<Chunk> = None;
        let (rx, sent, received) = stream_through(1024, 64, 7, move |_, c| {
            if c.header.ty == ChunkType::Data {
                if let Some(prev) = held.take() {
                    return vec![c.clone(), prev];
                }
                held = Some(c.clone());
                return vec![];
            }
            vec![c.clone()]
        });
        assert_eq!(received, sent);
        assert_eq!(rx.stats.tpdus_failed, 0);
    }

    #[test]
    fn stale_retransmissions_rejected_after_window_slides() {
        let p = params(0);
        let mut framer = Framer::new(p, layout());
        let mut rx = StreamReceiver::new(p, layout(), 16);
        let first: Vec<Chunk> = framer
            .frame_simple(&[1u8; 8], 0xF, false)
            .iter()
            .flat_map(|t| t.all_chunks())
            .collect();
        for c in &first {
            rx.handle_chunk(c.clone(), 0);
        }
        // Stream far enough that the window base moves well past TPDU 0.
        for _ in 0..4 {
            for t in framer.frame_simple(&[2u8; 8], 0xF, false) {
                for c in t.all_chunks() {
                    rx.handle_chunk(c, 0);
                }
            }
        }
        let before = rx.stats.stale_chunks;
        // A duplicate of TPDU 0 arrives very late: C.SN 0 is now *behind*
        // the base (base_csn = 40), so it must be classified stale.
        rx.handle_chunk(first[0].clone(), 1);
        assert_eq!(rx.stats.stale_chunks, before + 1);
        assert_eq!(rx.delivered(), 40);
    }

    #[test]
    fn sender_overrun_is_refused() {
        let p = params(0);
        let mut framer = Framer::new(p, layout());
        let mut rx = StreamReceiver::new(p, layout(), 8);
        // Two TPDUs = 16 elements, but the window holds 8 and nothing has
        // been delivered for TPDU 1 yet... TPDU 0 fits, TPDU 1 does not
        // until TPDU 0 verifies and slides out. Feed TPDU 1 first.
        let tpdus = framer.frame_simple(&[3u8; 16], 0xF, false);
        for c in tpdus[1].all_chunks() {
            rx.handle_chunk(c, 0);
        }
        assert!(rx.stats.overrun_chunks > 0);
        // In-window TPDU 0 flows normally and slides the window...
        for c in tpdus[0].all_chunks() {
            rx.handle_chunk(c, 0);
        }
        assert_eq!(rx.poll_delivered(), vec![3u8; 8]);
        // ...after which the retransmitted TPDU 1 fits.
        for c in tpdus[1].all_chunks() {
            rx.handle_chunk(c, 0);
        }
        assert_eq!(rx.poll_delivered(), vec![3u8; 8]);
    }

    #[test]
    fn corrupt_tpdu_blocks_then_recovers() {
        let p = params(0);
        let mut framer = Framer::new(p, layout());
        let mut rx = StreamReceiver::new(p, layout(), 32);
        let tpdus = framer.frame_simple(&[7u8; 16], 0xF, false);
        // Corrupt TPDU 0's payload.
        let mut bad = tpdus[0].chunks[0].clone();
        let mut raw = bad.payload.to_vec();
        raw[0] ^= 1;
        bad.payload = raw.into();
        rx.handle_chunk(bad, 0);
        rx.handle_chunk(tpdus[0].ed.clone(), 0);
        for c in tpdus[1].all_chunks() {
            rx.handle_chunk(c, 0);
        }
        assert_eq!(rx.stats.tpdus_failed, 1);
        assert!(
            rx.poll_delivered().is_empty(),
            "nothing may pass the bad TPDU"
        );
        // Retransmission with identical labels recovers the stream.
        assert_eq!(rx.failed_starts(), vec![0]);
        rx.reset_group(0);
        for c in tpdus[0].all_chunks() {
            rx.handle_chunk(c, 0);
        }
        assert_eq!(rx.poll_delivered(), vec![7u8; 16]);
        assert_eq!(rx.delivered(), 16);
    }

    #[test]
    fn stream_ack_reports_window_state() {
        let p = params(0);
        let mut framer = Framer::new(p, layout());
        let mut rx = StreamReceiver::new(p, layout(), 32);
        let tpdus = framer.frame_simple(&[9u8; 24], 0xF, false); // 3 × 8
                                                                 // TPDU 0 delivered, TPDU 1 missing its first half (the second half
                                                                 // carries the T.ST bit, so the tracker knows the extent), TPDU 2
                                                                 // whole but blocked behind TPDU 1 (SACKed, not cumulative).
        for c in tpdus[0].all_chunks() {
            rx.handle_chunk(c, 0);
        }
        let half = chunks_core::frag::extract(&tpdus[1].chunks[0], 4, 4).unwrap();
        rx.handle_chunk(half, 0);
        rx.handle_chunk(tpdus[1].ed.clone(), 0);
        for c in tpdus[2].all_chunks() {
            rx.handle_chunk(c, 0);
        }
        let ack = rx.make_ack();
        assert_eq!(ack.cumulative, 8);
        assert_eq!(ack.sacks, vec![16]);
        assert_eq!(ack.gaps.len(), 1);
        let (lo, hi) = ack.gaps[0];
        assert!(lo >= 8 && hi <= 16, "gap inside TPDU 1: {lo}..{hi}");
        assert!(ack.need_ed.is_empty());
    }

    #[test]
    fn window_advert_tracks_base() {
        let p = params(100);
        let mut framer = Framer::new(p, layout());
        let mut rx = StreamReceiver::new(p, layout(), 64);
        assert_eq!(rx.window_advert(), (100, 64));
        for t in framer.frame_simple(&[1u8; 8], 0xF, false) {
            for c in t.all_chunks() {
                rx.handle_chunk(c, 0);
            }
        }
        assert_eq!(rx.window_advert(), (108, 64));
    }
}
