//! Resource budgets for the receive path: bounded memory under attack.
//!
//! The paper's receiver is correct on friendly traffic; a hostile peer can
//! make it *unbounded* instead — a tiny-fragment flood opens TPDU groups
//! and interval-table entries that never complete, and staged chunks in
//! reorder/reassembly modes pin bytes forever (the Kent–Mogul reassembly
//! lock-up, weaponised). A [`ResourceBudget`] puts explicit caps on all
//! three axes. When a cap is hit the receiver degrades *gracefully and
//! observably*: it first evicts the least-recently-touched idle group
//! (LRU by virtual clock), and only sheds the arriving chunk — counted,
//! typed, and traced — when nothing is evictable.
//!
//! A [`GlobalBudget`] adds a process-wide byte cap shared by every receiver
//! of a parallel pipeline, so one connection cannot starve its siblings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Caps on what one receiver may hold. The default is unlimited — budgets
/// are opt-in, and an unlimited budget adds no work to the hot path.
#[derive(Clone, Debug)]
pub struct ResourceBudget {
    /// Maximum bytes staged in reorder/reassembly buffers at once.
    pub max_held_bytes: u64,
    /// Maximum TPDU groups open (arrived but neither delivered nor
    /// condemned) at once.
    pub max_open_groups: usize,
    /// Maximum disjoint claimed ranges tracked at once — the interval-table
    /// occupancy a VLSI reassembly unit would cap in hardware.
    pub max_fragments: usize,
    /// Optional process-wide byte budget shared with other receivers.
    pub global: Option<Arc<GlobalBudget>>,
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ResourceBudget {
            max_held_bytes: u64::MAX,
            max_open_groups: usize::MAX,
            max_fragments: usize::MAX,
            global: None,
        }
    }
}

impl ResourceBudget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget with per-connection caps and no global pool.
    pub fn with_caps(max_held_bytes: u64, max_open_groups: usize, max_fragments: usize) -> Self {
        ResourceBudget {
            max_held_bytes,
            max_open_groups,
            max_fragments,
            global: None,
        }
    }

    /// Attaches a shared global byte pool.
    pub fn with_global(mut self, global: Arc<GlobalBudget>) -> Self {
        self.global = Some(global);
        self
    }

    /// True when any cap is actually finite — the one branch the unbudgeted
    /// hot path pays.
    pub fn is_limited(&self) -> bool {
        self.max_held_bytes != u64::MAX
            || self.max_open_groups != usize::MAX
            || self.max_fragments != usize::MAX
            || self.global.is_some()
    }

    /// True when staging `more` bytes on top of `held` would exceed the
    /// per-connection or global byte cap.
    pub fn bytes_exceeded(&self, held: u64, more: u64) -> bool {
        if held.saturating_add(more) > self.max_held_bytes {
            return true;
        }
        match &self.global {
            Some(g) => g.held_bytes().saturating_add(more) > g.cap_bytes(),
            None => false,
        }
    }
}

/// A process-wide staged-byte pool shared by many receivers (one per
/// worker shard in the parallel pipeline). Atomic and advisory: admission
/// checks read it, staging adds, releasing subtracts — a soft cap that
/// bounds aggregate memory without a lock on the hot path.
#[derive(Debug, Default)]
pub struct GlobalBudget {
    held: AtomicU64,
    cap: u64,
}

impl GlobalBudget {
    /// Creates a pool capped at `cap_bytes`.
    pub fn new(cap_bytes: u64) -> Arc<Self> {
        Arc::new(GlobalBudget {
            held: AtomicU64::new(0),
            cap: cap_bytes,
        })
    }

    /// The configured cap.
    pub fn cap_bytes(&self) -> u64 {
        self.cap
    }

    /// Bytes currently held across all attached receivers.
    pub fn held_bytes(&self) -> u64 {
        self.held.load(Ordering::Relaxed)
    }

    /// Records `bytes` staged.
    pub fn add(&self, bytes: u64) {
        self.held.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `bytes` released.
    pub fn sub(&self, bytes: u64) {
        let mut cur = self.held.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .held
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = ResourceBudget::default();
        assert!(!b.is_limited());
        assert!(!b.bytes_exceeded(u64::MAX - 1, 1));
    }

    #[test]
    fn caps_trip_exactly_at_the_boundary() {
        let b = ResourceBudget::with_caps(100, 4, 8);
        assert!(b.is_limited());
        assert!(!b.bytes_exceeded(60, 40));
        assert!(b.bytes_exceeded(60, 41));
    }

    #[test]
    fn global_pool_is_shared_and_saturating() {
        let g = GlobalBudget::new(1000);
        let a =
            ResourceBudget::with_caps(u64::MAX, usize::MAX, usize::MAX).with_global(Arc::clone(&g));
        let b = ResourceBudget::default().with_global(Arc::clone(&g));
        assert!(a.is_limited() && b.is_limited());
        g.add(600);
        assert!(!a.bytes_exceeded(0, 400));
        assert!(b.bytes_exceeded(0, 401), "pool pressure is visible to both");
        g.sub(200);
        assert_eq!(g.held_bytes(), 400);
        g.sub(10_000);
        assert_eq!(g.held_bytes(), 0, "release saturates at zero");
    }
}
