//! End-to-end integration: the chunk transport over the simulated network —
//! loss, duplication, corruption, multipath reordering, and in-network
//! refragmentation, all at once.

use chunks::core::packet::Packet;
use chunks::core::wire::WIRE_HEADER_LEN;
use chunks::netsim::{ChunkRouter, LinkConfig, PathBuilder, RefragPolicy};
use chunks::transport::{ConnectionParams, DeliveryMode, Receiver, Sender, SenderConfig};
use chunks::wsc::InvariantLayout;

fn params(tpdu_elements: u32) -> ConnectionParams {
    ConnectionParams {
        conn_id: 0xE2E,
        elem_size: 1,
        initial_csn: 42,
        tpdu_elements,
    }
}

/// Runs a reliable transfer over `build_path`, retrying until complete or
/// `max_rounds`. Returns (rounds, receiver).
fn transfer(
    message: &[u8],
    mode: DeliveryMode,
    tpdu_elements: u32,
    mtu: usize,
    seed: u64,
    mut build_path: impl FnMut(u64) -> chunks::netsim::Path,
    max_rounds: u32,
) -> (u32, Receiver) {
    let p = params(tpdu_elements);
    let layout = InvariantLayout::default();
    let mut tx = Sender::new(SenderConfig {
        params: p,
        layout,
        mtu,
        min_tpdu_elements: 64,
        max_tpdu_elements: 1 << 14,
    });
    let mut rx = Receiver::new(mode, p, layout, message.len() as u64 + 64);
    tx.submit_simple(message, 0xAB, false);
    let mut rounds = 0;
    let mut clock = 0u64;
    while rounds < max_rounds {
        rounds += 1;
        let packets = if rounds == 1 {
            tx.packets_for_pending().unwrap()
        } else {
            for s in rx.failed_starts() {
                rx.reset_group(s);
            }
            let missing = tx.unacked_starts();
            if missing.is_empty() {
                break;
            }
            tx.retransmit(&missing).unwrap()
        };
        let mut path = build_path(seed.wrapping_add(rounds as u64));
        let inputs = packets
            .into_iter()
            .enumerate()
            .map(|(i, pk)| (clock + i as u64 * 500, pk.bytes.to_vec()))
            .collect();
        let deliveries = path.run(inputs);
        for d in &deliveries {
            rx.handle_packet(
                &Packet {
                    bytes: d.frame.clone().into(),
                },
                d.time,
            );
        }
        clock = deliveries.last().map(|d| d.time).unwrap_or(clock) + 1_000_000;
        tx.handle_ack(&rx.make_ack());
        if tx.pending_tpdus() == 0 {
            break;
        }
    }
    (rounds, rx)
}

#[test]
fn clean_multipath_transfer() {
    let message: Vec<u8> = (0..32_768).map(|i| (i % 253) as u8).collect();
    let (rounds, rx) = transfer(
        &message,
        DeliveryMode::Immediate,
        2048,
        1500,
        1,
        |s| {
            PathBuilder::new(s)
                .multipath(8, LinkConfig::clean(1500, 100_000, 622_000_000), 25_000)
                .build()
        },
        4,
    );
    assert_eq!(rounds, 1, "no loss, one round");
    assert_eq!(&rx.app_data()[..message.len()], &message[..]);
    assert_eq!(rx.stats.data_touches, message.len() as u64);
}

#[test]
fn lossy_duplicating_network_recovers() {
    let message: Vec<u8> = (0..20_000).map(|i| (i % 241) as u8).collect();
    let cfg = LinkConfig::clean(1500, 50_000, 155_000_000)
        .with_loss(0.08)
        .with_duplicate(0.05)
        .with_jitter(200_000);
    let (rounds, rx) = transfer(
        &message,
        DeliveryMode::Immediate,
        1024,
        1500,
        7,
        |s| PathBuilder::new(s).link(cfg).link(cfg).build(),
        24,
    );
    assert!(rounds < 24, "converged");
    assert_eq!(rx.verified_prefix(), message.len() as u64);
    assert_eq!(&rx.app_data()[..message.len()], &message[..]);
    assert!(rx.stats.duplicate_chunks > 0, "duplication exercised");
}

#[test]
fn corrupting_network_detected_and_recovered() {
    let message: Vec<u8> = (0..24_576).map(|i| (i % 239) as u8).collect();
    let cfg = LinkConfig::clean(1500, 10_000, 0).with_corrupt(0.4);
    let (rounds, rx) = transfer(
        &message,
        DeliveryMode::Immediate,
        512,
        1500,
        11,
        |s| PathBuilder::new(s).link(cfg).build(),
        48,
    );
    assert!(rounds < 48, "converged despite corruption");
    assert_eq!(rx.verified_prefix(), message.len() as u64);
    assert_eq!(&rx.app_data()[..message.len()], &message[..]);
    assert!(
        rx.stats.tpdus_failed > 0 || rx.stats.bad_packets > 0,
        "corruption must have been caught at least once \
         (failed={}, bad={})",
        rx.stats.tpdus_failed,
        rx.stats.bad_packets
    );
}

#[test]
fn midpath_refragmentation_is_transparent() {
    let message: Vec<u8> = (0..10_000).map(|i| (i % 233) as u8).collect();
    let narrow = WIRE_HEADER_LEN + 256;
    let (rounds, rx) = transfer(
        &message,
        DeliveryMode::Immediate,
        1024,
        1500,
        13,
        |s| {
            PathBuilder::new(s)
                .link(LinkConfig::clean(1500, 20_000, 0))
                .routed_link(
                    Box::new(ChunkRouter::new(narrow, RefragPolicy::Repack)),
                    LinkConfig::clean(narrow, 20_000, 0),
                )
                .routed_link(
                    Box::new(ChunkRouter::new(
                        1500,
                        RefragPolicy::Reassemble { window: 8 },
                    )),
                    LinkConfig::clean(1500, 20_000, 0),
                )
                .build()
        },
        4,
    );
    assert_eq!(rounds, 1);
    assert_eq!(&rx.app_data()[..message.len()], &message[..]);
}

#[test]
fn all_modes_deliver_identical_data_under_stress() {
    let message: Vec<u8> = (0..16_384).map(|i| (i % 227) as u8).collect();
    let cfg = LinkConfig::clean(1500, 30_000, 622_000_000)
        .with_loss(0.04)
        .with_jitter(150_000);
    for mode in [
        DeliveryMode::Immediate,
        DeliveryMode::Reorder,
        DeliveryMode::Reassemble,
    ] {
        let (rounds, rx) = transfer(
            &message,
            mode,
            1024,
            1500,
            17,
            |s| PathBuilder::new(s).multipath(4, cfg, 60_000).build(),
            24,
        );
        assert!(rounds < 24, "{mode:?} converged");
        assert_eq!(
            &rx.app_data()[..message.len()],
            &message[..],
            "{mode:?} delivered identical data"
        );
    }
}

#[test]
fn connection_close_travels_end_to_end() {
    let p = params(512);
    let layout = InvariantLayout::default();
    let mut tx = Sender::new(SenderConfig {
        params: p,
        layout,
        mtu: 1500,
        min_tpdu_elements: 64,
        max_tpdu_elements: 4096,
    });
    let mut rx = Receiver::new(DeliveryMode::Immediate, p, layout, 4096);
    tx.submit_simple(&[9u8; 1000], 1, true); // close = C.ST on last element
    for pk in tx.packets_for_pending().unwrap() {
        rx.handle_packet(&pk, 0);
    }
    assert!(rx.is_closed());
    assert_eq!(rx.verified_prefix(), 1000);
}
