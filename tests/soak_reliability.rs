//! Tier-1 assertions over the reliability soak harness (`experiments soak`).
//!
//! The soak drives full transfers through a Byzantine middlebox on a
//! deterministic virtual clock. These tests pin the acceptance criteria:
//! every fault-matrix cell terminates (no livelock), pure ack loss up to
//! 20% still delivers 100% via timer-driven retransmission, budget
//! exhaustion degrades exactly as the policy prescribes, and the whole
//! sweep is bit-for-bit reproducible from its seed.

use chunks::experiments::soak::{self, Outcome};

const SEED_A: u64 = 0xC0451;
const SEED_B: u64 = 0xA5EED;

#[test]
fn every_cell_terminates_under_both_seeds() {
    for seed in [SEED_A, SEED_B] {
        let result = soak::run(seed);
        assert_eq!(result.rows.len(), soak::fault_matrix().len());
        for row in &result.rows {
            assert!(
                !row.hang,
                "{} (seed {seed:#x}) hit the {} -tick livelock bound",
                row.scenario,
                soak::MAX_TICKS
            );
            assert!(
                row.terminated_cleanly(),
                "{} (seed {seed:#x}) ended dirty: {:?}",
                row.scenario,
                row
            );
        }
        assert!(result.passes(), "acceptance failed under seed {seed:#x}");
    }
}

#[test]
fn ack_loss_up_to_twenty_percent_still_delivers_everything() {
    for seed in [SEED_A, SEED_B] {
        let result = soak::run(seed);
        for row in result
            .rows
            .iter()
            .filter(|r| matches!(r.scenario, "ack-loss-0" | "ack-loss-10" | "ack-loss-20"))
        {
            assert_eq!(
                row.outcome,
                Outcome::Delivered,
                "{} under seed {seed:#x}",
                row.scenario
            );
            assert_eq!(row.delivered_bytes, row.total_bytes);
        }
    }
}

#[test]
fn timer_retransmission_is_what_recovers_the_blackout_rows() {
    let result = soak::run(SEED_A);
    let abort = result
        .rows
        .iter()
        .find(|r| r.scenario == "ack-blackout-abort")
        .unwrap();
    // Total ack blackout under Abort: the timer fires through the whole
    // budget for every TPDU, then the typed dead-peer verdict surfaces.
    assert_eq!(abort.outcome, Outcome::Aborted);
    assert!(abort.timer_retransmits > 0);
    assert_eq!(abort.shed_tpdus, 0);

    let shed = result
        .rows
        .iter()
        .find(|r| r.scenario == "ack-blackout-shed")
        .unwrap();
    // Same blackout under Shed: every TPDU is abandoned instead, the
    // window drains, and the session ends without an error.
    assert_eq!(shed.outcome, Outcome::Shed);
    assert!(shed.shed_tpdus > 0);
    assert!(!shed.hang);
}

#[test]
fn the_sweep_is_deterministic_and_seed_sensitive() {
    let first = soak::run(SEED_A);
    let second = soak::run(SEED_A);
    assert_eq!(first, second, "same seed must reproduce identical rows");
    // Compare behaviour only (the seed field trivially differs).
    let behaviour = |r: &soak::SoakResult| -> Vec<_> {
        r.rows
            .iter()
            .map(|row| (row.elapsed_ns, row.timer_retransmits, row.acks_dropped))
            .collect()
    };
    let other = soak::run(SEED_B);
    assert_ne!(
        behaviour(&first),
        behaviour(&other),
        "different seeds must draw different fault streams"
    );
}
