//! The tentpole's proof obligation: the receive hot path performs **zero**
//! heap allocations per chunk in steady state — serial and parallel.
//!
//! Methodology: a warm-up phase feeds a prefix of the packet stream so every
//! pool, slab, map and buffer reaches working size (plus an explicit
//! `reserve` for the load that follows), then the measured phase replays the
//! rest of the stream under [`assert_no_alloc!`]. The counting allocator
//! wraps `System` process-wide; the parallel leg runs the *virtual* engine
//! so exactly one thread executes inside the measured window.

mod common;

use chunks::transport::{
    ConnSpec, ConnectionParams, DeliveryMode, Engine, ParallelReceiver, Receiver, Schedule, Sender,
    SenderConfig,
};
use chunks::wsc::InvariantLayout;
use chunks_core::packet::Packet;
use chunks_obs::{AlwaysOnSink, ShardSink};
use common::alloc_counter::{self, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const ELEM_SIZE: u16 = 1;
const TPDU_ELEMENTS: u32 = 64;
const MTU: usize = 600;
const MESSAGE_LEN: usize = 32 * 1024;

fn params(conn_id: u32) -> ConnectionParams {
    ConnectionParams {
        conn_id,
        elem_size: ELEM_SIZE,
        initial_csn: 0,
        tpdu_elements: TPDU_ELEMENTS,
    }
}

fn layout() -> InvariantLayout {
    InvariantLayout::with_data_symbols(1 << 15)
}

fn capacity_elements() -> u64 {
    MESSAGE_LEN as u64 + TPDU_ELEMENTS as u64 + 64
}

/// The full packet stream of one connection's message.
fn stream(conn_id: u32) -> Vec<Packet> {
    let mut tx = Sender::new(SenderConfig {
        params: params(conn_id),
        layout: layout(),
        mtu: MTU,
        min_tpdu_elements: 2,
        max_tpdu_elements: TPDU_ELEMENTS,
    });
    let message: Vec<u8> = (0..MESSAGE_LEN)
        .map(|i| (i as u64).wrapping_mul(conn_id as u64 + 7) as u8)
        .collect();
    tx.submit_simple(&message, conn_id, false);
    tx.packets_for_pending().expect("clean stream packs")
}

/// Counts Data + ED chunks across a packet slice (the denominator of
/// allocs-per-chunk).
fn chunk_count(packets: &[Packet]) -> u64 {
    packets
        .iter()
        .map(|p| chunks_core::packet::spans(p).count() as u64)
        .sum()
}

#[test]
fn serial_receive_steady_state_is_allocation_free() {
    let packets = stream(1);
    let total_tpdus = MESSAGE_LEN / TPDU_ELEMENTS as usize + 2;
    let warmup = packets.len() / 4;
    assert!(warmup >= 4, "stream long enough to warm up");

    let mut rx = Receiver::new(
        DeliveryMode::Immediate,
        params(1),
        layout(),
        capacity_elements(),
    );
    // Working size for everything the stream will need, ahead of time.
    rx.reserve(total_tpdus + 8, total_tpdus * 4 + 64);
    let mut out = Vec::with_capacity(total_tpdus * 4 + 64);

    const BATCH: usize = 16;
    for (i, batch) in packets[..warmup].chunks(BATCH).enumerate() {
        rx.ingest_batch(batch, i as u64, &mut out);
    }

    // Steady state: every remaining batch must touch the heap zero times.
    let measured = &packets[warmup..];
    let measured_chunks = chunk_count(measured);
    let before = alloc_counter::snapshot();
    for (i, batch) in measured.chunks(BATCH).enumerate() {
        assert_no_alloc!(
            rx.ingest_batch(batch, (warmup + i) as u64, &mut out),
            "serial batch {i}"
        );
    }
    let after = alloc_counter::snapshot();
    let (allocs, _) = alloc_counter::delta(before, after);
    assert_eq!(allocs, 0, "allocs/chunk must be 0/{measured_chunks}");
    assert!(measured_chunks > 100, "measured window too small to matter");

    // The silent path still did the work.
    assert_eq!(rx.verified_prefix(), MESSAGE_LEN as u64);
    assert_eq!(rx.stats.bad_packets, 0);
    assert!(out
        .iter()
        .any(|e| matches!(e, chunks::transport::RxEvent::TpduDelivered { .. })));
}

#[test]
fn serial_receive_with_always_on_obs_is_allocation_free() {
    // The tentpole bar: arming production telemetry — sharded counters,
    // flight recorder, non-verbose events — must not reintroduce a single
    // steady-state allocation on the serial receive path.
    let packets = stream(1);
    let total_tpdus = MESSAGE_LEN / TPDU_ELEMENTS as usize + 2;
    let warmup = packets.len() / 4;

    let sink = AlwaysOnSink::shared();
    let mut rx = Receiver::new(
        DeliveryMode::Immediate,
        params(1),
        layout(),
        capacity_elements(),
    );
    rx.set_obs(ShardSink::wrap(sink.clone()));
    rx.reserve(total_tpdus + 8, total_tpdus * 4 + 64);
    let mut out = Vec::with_capacity(total_tpdus * 4 + 64);

    const BATCH: usize = 16;
    for (i, batch) in packets[..warmup].chunks(BATCH).enumerate() {
        rx.ingest_batch(batch, i as u64, &mut out);
    }

    let measured = &packets[warmup..];
    let measured_chunks = chunk_count(measured);
    let before = alloc_counter::snapshot();
    for (i, batch) in measured.chunks(BATCH).enumerate() {
        assert_no_alloc!(
            rx.ingest_batch(batch, (warmup + i) as u64, &mut out),
            "serial obs-on batch {i}"
        );
    }
    let after = alloc_counter::snapshot();
    let (allocs, _) = alloc_counter::delta(before, after);
    assert_eq!(allocs, 0, "obs-on allocs/chunk must be 0/{measured_chunks}");

    // The telemetry was really on: the shard block saw the hot path.
    assert_eq!(rx.verified_prefix(), MESSAGE_LEN as u64);
    let snap = sink.snapshot();
    assert!(snap.counter("transport.rx.chunks_accepted") > 0);
    assert!(snap.counter("transport.rx.tpdus_delivered") > 0);
}

/// Round-robin interleave of the three connections' streams, as a shared
/// link would deliver them.
fn interleaved(conns: u32) -> Vec<Packet> {
    let streams: Vec<Vec<Packet>> = (1..=conns).map(stream).collect();
    let longest = streams.iter().map(Vec::len).max().unwrap();
    let mut packets: Vec<Packet> = Vec::new();
    for i in 0..longest {
        for s in &streams {
            if let Some(p) = s.get(i) {
                packets.push(p.clone());
            }
        }
    }
    packets
}

#[test]
fn parallel_receive_steady_state_is_allocation_free() {
    const CONNS: u32 = 3;
    const WORKERS: usize = 4;

    let packets = interleaved(CONNS);
    let specs: Vec<ConnSpec> = (1..=CONNS)
        .map(|id| {
            ConnSpec::new(
                params(id),
                layout(),
                DeliveryMode::Immediate,
                capacity_elements(),
            )
        })
        .collect();
    let mut pr = ParallelReceiver::new(WORKERS, Engine::Virtual(Schedule::Fair), specs);

    let total_tpdus = (MESSAGE_LEN / TPDU_ELEMENTS as usize + 2) * CONNS as usize;
    pr.reserve(total_tpdus + 8, total_tpdus * 4 + 64);

    const BATCH: usize = 16;
    let warmup = packets.len() / 4;
    for (i, batch) in packets[..warmup].chunks(BATCH).enumerate() {
        pr.ingest_batch(batch, i as u64);
        pr.drain();
    }

    let measured = &packets[warmup..];
    let measured_chunks = chunk_count(measured);
    let before = alloc_counter::snapshot();
    for (i, batch) in measured.chunks(BATCH).enumerate() {
        assert_no_alloc!(
            {
                pr.ingest_batch(batch, (warmup + i) as u64);
                pr.drain();
            },
            "parallel batch {i}"
        );
    }
    let after = alloc_counter::snapshot();
    let (allocs, _) = alloc_counter::delta(before, after);
    assert_eq!(allocs, 0, "allocs/chunk must be 0/{measured_chunks}");
    assert!(measured_chunks > 100, "measured window too small to matter");

    let out = pr.finish();
    assert_eq!(out.dispatch.decode_errors, 0);
    assert_eq!(out.dispatch.bad_packets, 0);
    for id in 1..=CONNS {
        assert_eq!(
            out.conns[&id].receiver.verified_prefix(),
            MESSAGE_LEN as u64,
            "conn {id} must fully verify"
        );
    }
}

#[test]
fn parallel_receive_with_always_on_obs_is_allocation_free() {
    const CONNS: u32 = 3;
    const WORKERS: usize = 4;

    let packets = interleaved(CONNS);
    let specs: Vec<ConnSpec> = (1..=CONNS)
        .map(|id| {
            ConnSpec::new(
                params(id),
                layout(),
                DeliveryMode::Immediate,
                capacity_elements(),
            )
        })
        .collect();
    let sink = AlwaysOnSink::shared();
    let mut pr = ParallelReceiver::new_with_obs(
        WORKERS,
        Engine::Virtual(Schedule::Fair),
        specs,
        sink.clone(),
    );

    let total_tpdus = (MESSAGE_LEN / TPDU_ELEMENTS as usize + 2) * CONNS as usize;
    pr.reserve(total_tpdus + 8, total_tpdus * 4 + 64);

    const BATCH: usize = 16;
    let warmup = packets.len() / 4;
    for (i, batch) in packets[..warmup].chunks(BATCH).enumerate() {
        pr.ingest_batch(batch, i as u64);
        pr.drain();
    }

    let measured = &packets[warmup..];
    let measured_chunks = chunk_count(measured);
    let before = alloc_counter::snapshot();
    for (i, batch) in measured.chunks(BATCH).enumerate() {
        assert_no_alloc!(
            {
                pr.ingest_batch(batch, (warmup + i) as u64);
                pr.drain();
            },
            "parallel obs-on batch {i}"
        );
    }
    let after = alloc_counter::snapshot();
    let (allocs, _) = alloc_counter::delta(before, after);
    assert_eq!(allocs, 0, "obs-on allocs/chunk must be 0/{measured_chunks}");

    let out = pr.finish();
    for id in 1..=CONNS {
        assert_eq!(
            out.conns[&id].receiver.verified_prefix(),
            MESSAGE_LEN as u64,
            "conn {id} must fully verify"
        );
    }
    // The telemetry was really on, sharded per worker plus the dispatcher.
    assert!(sink.shard_count() >= WORKERS);
    let snap = sink.snapshot();
    assert!(snap.counter("transport.parallel.packets") > 0);
    assert!(snap.counter("transport.rx.chunks_accepted") > 0);
}
