//! Integration tests asserting the paper reproductions: every figure check
//! passes and Table 1's measured detection channels match the paper.

use chunks::experiments::{figures, table1};

#[test]
fn all_figures_reproduce() {
    for fig in figures::all_figures() {
        for (desc, passed) in &fig.checks {
            assert!(*passed, "{}: {desc}", fig.figure);
        }
    }
}

#[test]
fn table1_matches_paper() {
    let t = table1::run();
    assert_eq!(t.rows.len(), 14, "all fourteen fields covered");
    for row in &t.rows {
        assert_eq!(
            row.measured, row.paper,
            "field {} detected via {:?}, paper says {:?}",
            row.field, row.measured, row.paper
        );
    }
    assert!(t.matches_paper());
}

#[test]
fn no_corruption_channel_is_undetected() {
    let t = table1::run();
    assert!(t
        .rows
        .iter()
        .all(|r| r.measured != table1::Channel::Undetected));
}

#[test]
fn figure2_chunk_matches_paper_values() {
    let c = figures::figure2_chunk();
    assert_eq!(c.header.conn.id, 0xA);
    assert_eq!(c.header.tpdu.id, 0x51); // 'Q'
    assert_eq!(c.header.ext.id, 0xC);
    assert_eq!(
        (c.header.conn.sn, c.header.tpdu.sn, c.header.ext.sn),
        (36, 0, 24)
    );
    assert_eq!(c.header.len, 7);
}
