//! Encrypted transport end to end: the sender encrypts with the
//! position-keyed cipher before framing (SIZE = cipher block, so no
//! fragment ever splits a block — §2's DES example), the network fragments
//! and reorders, and the receiver decrypts each verified TPDU without any
//! ordering constraint.

use chunks::cipher::{decrypt_chunk, encrypt_chunk, PositionCipher, BLOCK_BYTES};
use chunks::core::frag::split_to_fit;
use chunks::core::packet::{pack, unpack, Packet};
use chunks::core::wire::WIRE_HEADER_LEN;
use chunks::netsim::{LinkConfig, PathBuilder};
use chunks::transport::{ConnectionParams, DeliveryMode, Framer, Receiver, RxEvent};
use chunks::wsc::InvariantLayout;

fn params() -> ConnectionParams {
    ConnectionParams {
        conn_id: 0xEC,
        elem_size: BLOCK_BYTES as u16,
        initial_csn: 0,
        tpdu_elements: 128, // 1 KiB TPDUs of 8-byte blocks
    }
}

#[test]
fn encrypted_blocks_cross_a_fragmenting_reordering_network() {
    let cipher = PositionCipher::new([0xAAAA, 0xBBBB]);
    let layout = InvariantLayout::default();
    let plaintext: Vec<u8> = (0..8192).map(|i| (i % 251) as u8).collect();

    // Sender: frame the plaintext, then encrypt each chunk in place (the
    // ED chunk is computed over the *ciphertext*, so the network-visible
    // invariant never exposes plaintext).
    let mut framer = Framer::new(params(), layout);
    let tpdus = framer.frame_simple(&plaintext, 0xF, false);
    let mut wire_chunks = Vec::new();
    for t in &tpdus {
        let mut inv = chunks::wsc::TpduInvariant::new(layout).unwrap();
        for c in &t.chunks {
            let enc = encrypt_chunk(&cipher, c).unwrap();
            inv.absorb_chunk(&enc.header, &enc.payload).unwrap();
            wire_chunks.push(enc);
        }
        let mut ed = t.ed.clone();
        ed.payload = bytes::Bytes::copy_from_slice(&inv.digest());
        wire_chunks.push(ed);
    }
    // Pre-fragment aggressively so the network sees many small pieces.
    let wire_chunks: Vec<_> = wire_chunks
        .into_iter()
        .flat_map(|c| {
            if c.header.ty == chunks::core::label::ChunkType::Data {
                split_to_fit(c, WIRE_HEADER_LEN + 8 * BLOCK_BYTES).unwrap()
            } else {
                vec![c]
            }
        })
        .collect();
    let packets = pack(wire_chunks, 256).unwrap();

    // Network: skewed multipath.
    let mut path = PathBuilder::new(0xE2E)
        .multipath(4, LinkConfig::clean(256, 90_000, 155_000_000), 70_000)
        .build();
    let inputs = packets
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as u64 * 900, p.bytes.to_vec()))
        .collect();

    // Receiver: verify ciphertext TPDUs on arrival; decrypt each chunk
    // independently as it is accepted (no ordering needed).
    let mut rx = Receiver::new(DeliveryMode::Immediate, params(), layout, 4096);
    let mut clear = vec![0u8; plaintext.len()];
    let mut delivered = 0u64;
    for d in path.run(inputs) {
        let packet = Packet {
            bytes: d.frame.into(),
        };
        // Decrypt-on-arrival into the plaintext buffer, independent of the
        // receiver's ciphertext verification.
        for c in unpack(&packet).unwrap() {
            if c.header.ty == chunks::core::label::ChunkType::Data {
                let dec = decrypt_chunk(&cipher, &c).unwrap();
                let at = dec.header.conn.sn as usize * BLOCK_BYTES;
                clear[at..at + dec.payload.len()].copy_from_slice(&dec.payload);
            }
        }
        for e in rx.handle_packet(&packet, d.time) {
            if let RxEvent::TpduDelivered { elements, .. } = e {
                delivered += elements;
            }
        }
    }

    assert_eq!(delivered, (plaintext.len() / BLOCK_BYTES) as u64);
    assert_eq!(clear, plaintext, "disordered decryption is exact");
    // The ciphertext that crossed the wire never equals the plaintext.
    assert_ne!(&rx.app_data()[..64], &plaintext[..64]);
}

#[test]
fn block_cipher_blocks_survive_every_fragmentation_grain() {
    // SIZE=8 means split_to_fit can never produce a partial block, whatever
    // the MTU — try every MTU from one block upward.
    let cipher = PositionCipher::new([7, 9]);
    let payload: Vec<u8> = (0..256).map(|i| i as u8).collect();
    let whole = chunks::core::Chunk::new(
        chunks::core::ChunkHeader::data(
            8,
            32,
            chunks::core::FramingTuple::new(1, 0, false),
            chunks::core::FramingTuple::new(2, 0, true),
            chunks::core::FramingTuple::new(3, 0, true),
        ),
        payload.clone().into(),
    )
    .unwrap();
    let enc = encrypt_chunk(&cipher, &whole).unwrap();
    for extra in 0..5usize {
        let mtu = WIRE_HEADER_LEN + 8 * (extra + 1);
        let pieces = split_to_fit(enc.clone(), mtu).unwrap();
        let mut rebuilt = vec![0u8; payload.len()];
        for p in pieces {
            assert_eq!(p.payload.len() % 8, 0, "no split block at mtu {mtu}");
            let dec = decrypt_chunk(&cipher, &p).unwrap();
            let at = dec.header.tpdu.sn as usize * 8;
            rebuilt[at..at + dec.payload.len()].copy_from_slice(&dec.payload);
        }
        assert_eq!(rebuilt, payload);
    }
}
