//! Selective sub-TPDU retransmission: the receiver's nack list names
//! element ranges, and the sender answers with extracted sub-chunks
//! (Appendix C), which cost far fewer bytes than whole-TPDU retransmission.

use chunks::core::packet::{unpack, Packet};
use chunks::transport::{ConnectionParams, DeliveryMode, Receiver, RxEvent, Sender, SenderConfig};
use chunks::wsc::InvariantLayout;

fn params() -> ConnectionParams {
    ConnectionParams {
        conn_id: 0x5E,
        elem_size: 1,
        initial_csn: 10,
        tpdu_elements: 64,
    }
}

fn setup(message: &[u8]) -> (Sender, Receiver) {
    let layout = InvariantLayout::with_data_symbols(4096);
    let mut tx = Sender::new(SenderConfig {
        params: params(),
        layout,
        mtu: 96, // small packets so TPDUs fragment
        min_tpdu_elements: 8,
        max_tpdu_elements: 256,
    });
    let rx = Receiver::new(DeliveryMode::Immediate, params(), layout, 4096);
    tx.submit_simple(message, 0xF, false);
    (tx, rx)
}

#[test]
fn gap_ack_names_exact_missing_ranges() {
    let message: Vec<u8> = (0..128).map(|i| i as u8).collect();
    let (tx, mut rx) = setup(&message);
    let packets = tx.packets_for_pending().unwrap();
    // Drop packet 1 (a middle fragment).
    for (i, p) in packets.iter().enumerate() {
        if i != 1 {
            rx.handle_packet(p, 0);
        }
    }
    let ack = rx.make_ack();
    assert!(!ack.gaps.is_empty(), "missing ranges reported");
    let dropped = unpack(&packets[1]).unwrap();
    let first_missing = dropped
        .iter()
        .filter(|c| c.header.ty == chunks::core::label::ChunkType::Data)
        .map(|c| (c.header.conn.sn - 10) as u64)
        .min()
        .unwrap();
    assert!(
        ack.gaps.iter().any(|&(lo, _)| lo == first_missing),
        "gap list {:?} should start at the dropped chunk ({first_missing})",
        ack.gaps
    );
}

#[test]
fn selective_retransmission_completes_and_saves_bytes() {
    let message: Vec<u8> = (0..256).map(|i| (i * 3) as u8).collect();
    let (mut tx, mut rx) = setup(&message);
    let packets = tx.packets_for_pending().unwrap();
    let full_bytes: usize = packets.iter().map(|p| p.len()).sum();
    // Drop two packets.
    for (i, p) in packets.iter().enumerate() {
        if i != 1 && i != 4 {
            rx.handle_packet(p, 0);
        }
    }
    let ack = rx.make_ack();
    let repair = tx.retransmit_for_ack(&ack).unwrap();
    let repair_bytes: usize = repair.iter().map(|p| p.len()).sum();
    assert!(
        repair_bytes < full_bytes / 2,
        "repair {repair_bytes} B should be far below full {full_bytes} B"
    );
    let mut delivered = 0;
    for p in &repair {
        for e in rx.handle_packet(p, 1) {
            if matches!(e, RxEvent::TpduDelivered { .. }) {
                delivered += 1;
            }
        }
    }
    assert!(delivered > 0);
    assert_eq!(rx.verified_prefix(), message.len() as u64);
    assert_eq!(&rx.app_data()[..message.len()], &message[..]);
    // The whole window can now be acknowledged.
    tx.handle_ack(&rx.make_ack());
    assert_eq!(tx.pending_tpdus(), 0);
}

#[test]
fn gap_retransmission_tolerates_repeated_loss() {
    let message: Vec<u8> = (0..512).map(|i| (i * 7) as u8).collect();
    let (mut tx, mut rx) = setup(&message);
    let packets = tx.packets_for_pending().unwrap();
    // Deliver only every third packet initially.
    for (i, p) in packets.iter().enumerate() {
        if i % 3 == 0 {
            rx.handle_packet(p, 0);
        }
    }
    // Iterate gap repair, losing the first repair packet each round.
    for round in 0..8 {
        let ack = rx.make_ack();
        if ack.cumulative == message.len() as u64 {
            break;
        }
        let repair = tx.retransmit_for_ack(&ack).unwrap();
        assert!(!repair.is_empty(), "round {round}: gaps but no repair?");
        for (i, p) in repair.iter().enumerate() {
            if round < 2 && i == 0 {
                continue; // lose it again
            }
            rx.handle_packet(p, round + 1);
        }
    }
    assert_eq!(rx.verified_prefix(), message.len() as u64);
    assert_eq!(&rx.app_data()[..message.len()], &message[..]);
}

#[test]
fn failed_tpdu_is_renacked_in_full() {
    let message: Vec<u8> = (0..64).map(|i| i as u8).collect();
    let (mut tx, mut rx) = setup(&message);
    let packets = tx.packets_for_pending().unwrap();
    // Corrupt the first packet's payload byte (past the header).
    let mut raw = packets[0].bytes.to_vec();
    let len = raw.len();
    raw[len - 3] ^= 0x80;
    rx.handle_packet(&Packet { bytes: raw.into() }, 0);
    for p in &packets[1..] {
        rx.handle_packet(p, 0);
    }
    let ack = rx.make_ack();
    assert!(
        ack.gaps.iter().any(|&(lo, hi)| lo == 0 && hi >= 64),
        "ED-failed TPDU must be nacked whole: {:?}",
        ack.gaps
    );
    // Reset and repair.
    for s in rx.failed_starts() {
        rx.reset_group(s);
    }
    for p in tx.retransmit_for_ack(&ack).unwrap() {
        rx.handle_packet(&p, 1);
    }
    assert_eq!(rx.verified_prefix(), 64);
}
