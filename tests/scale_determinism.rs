//! The scale sweep's standing gate: the shrunken soak — every cell of the
//! million-connection experiment at 16 Ki connections — must pass its
//! acceptance gates and replay byte-identically on its deterministic
//! columns. The full 2^20-connection run is the same code at a bigger
//! constant; opt in with `SCALE_FULL=1` (it is what `just scale` measures
//! and what `BENCH_scale.json` records).
//!
//! This binary does not install the counting global allocator, so the
//! allocation and memory-per-connection gates are skipped here; the
//! `experiments` binary enforces them on every regeneration.

use chunks::experiments::{scale, SEED};

#[test]
fn shrunken_scale_soak_passes_and_replays_identically() {
    let r = scale::run_quick(SEED);
    assert!(r.deterministic, "replay must reproduce every cell:\n{r}");
    assert!(r.passes(), "{r}");
}

#[test]
fn full_scale_soak_opt_in() {
    if std::env::var("SCALE_FULL").as_deref() != Ok("1") {
        return;
    }
    let r = scale::run(SEED);
    assert!(r.deterministic, "replay must reproduce every cell:\n{r}");
    assert!(r.passes(), "{r}");
}
