//! Adversarial input at the system level: the full receiver, the
//! demultiplexer, and the baseline decoders survive arbitrary bytes and
//! truncated/bit-flipped real traffic.

use chunks::baseline::aal::{Cell, CellReassembler};
use chunks::baseline::ip::{IpPacket, IpReassembler};
use chunks::baseline::xtp::{decode_super, XtpPdu};
use chunks::core::packet::Packet;
use chunks::core::wire;
use chunks::transport::{
    AckInfo, ConnectionDemux, ConnectionParams, DeliveryMode, Receiver, Sender, SenderConfig,
    Signal,
};
use chunks::wsc::InvariantLayout;
use proptest::prelude::*;

fn params() -> ConnectionParams {
    ConnectionParams {
        conn_id: 5,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: 32,
    }
}

fn layout() -> InvariantLayout {
    InvariantLayout::with_data_symbols(2048)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn receiver_survives_random_packets(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512), 1..16),
    ) {
        let mut rx = Receiver::new(DeliveryMode::Immediate, params(), layout(), 4096);
        for (i, f) in frames.iter().enumerate() {
            let _ = rx.handle_packet(&Packet { bytes: f.clone().into() }, i as u64);
        }
    }

    #[test]
    fn receiver_survives_bitflipped_real_traffic(
        flip_byte in any::<usize>(),
        flip_bit in 0usize..8,
        mode_idx in 0usize..3,
    ) {
        let mode = [DeliveryMode::Immediate, DeliveryMode::Reorder, DeliveryMode::Reassemble][mode_idx];
        let mut tx = Sender::new(SenderConfig {
            params: params(),
            layout: layout(),
            mtu: 256,
            min_tpdu_elements: 4,
            max_tpdu_elements: 64,
        });
        tx.submit_simple(&[0xA5u8; 200], 0xE, false);
        let packets = tx.packets_for_pending().unwrap();
        let mut rx = Receiver::new(mode, params(), layout(), 4096);
        for (i, p) in packets.iter().enumerate() {
            let mut raw = p.bytes.to_vec();
            if i == 0 && !raw.is_empty() {
                let at = flip_byte % raw.len();
                raw[at] ^= 1 << flip_bit;
            }
            let _ = rx.handle_packet(&Packet { bytes: raw.into() }, i as u64);
        }
        let _ = rx.expire_incomplete();
        // Whatever happened, the receiver must not have delivered data that
        // differs from the original on a *verified* prefix... unless the
        // flip missed (hit padding) and everything verified.
        if rx.verified_prefix() == 200 && rx.stats.tpdus_failed == 0 {
            prop_assert_eq!(&rx.app_data()[..200], &[0xA5u8; 200][..]);
        }
    }

    #[test]
    fn receiver_survives_manufactured_overlaps_and_zero_spans(
        shift in 1u32..48,
        truncate in 0u32..4,
        policy_idx in 0usize..3,
    ) {
        use chunks::core::label::ChunkType;
        use chunks::core::packet::unpack;
        use chunks::vreasm::OverlapPolicy;

        let policy = OverlapPolicy::ALL[policy_idx];
        let mut tx = Sender::new(SenderConfig {
            params: params(),
            layout: layout(),
            mtu: 256,
            min_tpdu_elements: 4,
            max_tpdu_elements: 64,
        });
        let payload: Vec<u8> = (0..256).map(|i| (i * 5 + 1) as u8).collect();
        tx.submit_simple(&payload, 0xE, false);
        let packets = tx.packets_for_pending().unwrap();
        let mut rx = Receiver::new(DeliveryMode::Reassemble, params(), layout(), 4096)
            .with_policy(policy);
        for (i, p) in packets.iter().enumerate() {
            let now = i as u64;
            let _ = rx.handle_packet(p, now);
            for c in unpack(p).unwrap() {
                if c.header.ty != ChunkType::Data {
                    continue;
                }
                // An overlapping span: the same group key (both SNs shift
                // together), the original bytes re-offered at a shifted
                // offset — and optionally with a truncated LEN, so the
                // overlap cuts mid-chunk. Labels stay self-consistent
                // (payload length always matches SIZE × LEN).
                let mut dup = c.clone();
                dup.header.conn.sn = dup.header.conn.sn.wrapping_add(shift);
                dup.header.tpdu.sn = dup.header.tpdu.sn.wrapping_add(shift);
                if truncate > 0 && dup.header.len > truncate {
                    dup.header.len -= truncate;
                    let keep = dup.header.len as usize * dup.header.size as usize;
                    dup.payload = dup.payload.slice(0..keep);
                }
                let _ = rx.handle_chunk(dup, now);
                // A zero-length span at the same position: LEN = 0, no
                // payload bytes at all.
                let mut zero = c.clone();
                zero.header.len = 0;
                zero.payload = Vec::new().into();
                let _ = rx.handle_chunk(zero, now);
            }
        }
        let _ = rx.expire_incomplete();
        // Conflicts must surface as typed failures, never as corruption:
        // whatever the policy, the verified prefix holds the sender's bytes
        // exactly.
        let vp = (rx.verified_prefix() as usize).min(payload.len());
        prop_assert_eq!(&rx.app_data()[..vp], &payload[..vp]);
        // Under the reject policy a diagnosed conflict condemns its group —
        // the failure is reported, not swallowed.
        if policy == OverlapPolicy::Reject && rx.stats.overlap_conflicts > 0 {
            prop_assert!(
                rx.stats.tpdus_failed > 0 || !rx.failed_starts().is_empty(),
                "diagnosed conflicts must surface as typed failures"
            );
        }
    }

    #[test]
    fn demux_survives_random_packets(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256), 1..8),
    ) {
        let mut demux = ConnectionDemux::new();
        demux.register(5, Receiver::new(DeliveryMode::Immediate, params(), layout(), 1024));
        for f in &frames {
            let _ = demux.handle_packet(&Packet { bytes: f.clone().into() }, 0);
        }
    }

    #[test]
    fn control_decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Signal::decode(&bytes);
        let _ = AckInfo::decode(&bytes);
        let _ = IpPacket::decode(&bytes);
        let _ = XtpPdu::decode(&bytes);
        let _ = decode_super(&bytes);
    }

    #[test]
    fn ip_reassembler_survives_random_fragments(
        frags in proptest::collection::vec(
            (any::<u32>(), any::<u16>(), any::<bool>(),
             proptest::collection::vec(any::<u8>(), 0..64)), 1..32),
    ) {
        let mut r = IpReassembler::new(4096);
        for (id, offset, mf, payload) in frags {
            let p = IpPacket {
                id,
                offset: offset as u32,
                mf,
                payload: payload.into(),
            };
            let _ = r.offer(p);
        }
    }

    #[test]
    fn aal5_reassembler_survives_random_cells(
        cells in proptest::collection::vec(
            (any::<[u8; 48]>(), any::<bool>()), 1..32),
    ) {
        let mut r = CellReassembler::new();
        for (payload, eof) in cells {
            let _ = r.push(&Cell { payload, eof });
        }
    }
}

/// One valid encoded chunk of every chunk type (padding is represented by
/// the all-zero end-of-packet marker).
fn valid_exemplars() -> Vec<Vec<u8>> {
    use chunks::core::chunk::{byte_chunk, Chunk, ChunkHeader};
    use chunks::core::label::{ChunkType, FramingTuple};

    let t = |id, sn| FramingTuple::new(id, sn, false);
    let control = |ty, size: u16| {
        Chunk::new(
            ChunkHeader::control(ty, size, t(5, 0), t(0, 0), t(0, 0)),
            vec![0x5Au8; size as usize].into(),
        )
        .unwrap()
    };
    let mut frames = Vec::new();
    for chunk in [
        byte_chunk(t(5, 64), t(0, 64), t(0xE, 0), &[0xA5u8; 24]),
        control(ChunkType::ErrorDetection, 8),
        control(ChunkType::Signal, 6),
        control(ChunkType::Ack, 14),
    ] {
        let mut buf = Vec::new();
        wire::encode_chunk(&chunk, &mut buf);
        frames.push(buf);
    }
    frames.push(vec![0u8; wire::WIRE_HEADER_LEN]); // end-of-packet marker
    frames
}

/// Deterministic byte-mangling fuzz loop over every valid header form: every
/// single-bit flip, every truncation, and a seeded multi-byte mangle. The
/// decoder must always return a typed [`chunks::core::error::CoreError`] or
/// a consistent success — never panic, never read past the buffer.
#[test]
fn decoder_survives_systematic_mangling_of_all_valid_headers() {
    for original in valid_exemplars() {
        // Every single-bit flip of the encoding.
        for at in 0..original.len() {
            for bit in 0..8 {
                let mut buf = original.clone();
                buf[at] ^= 1u8 << bit;
                if let Ok((_, used)) = wire::decode_chunk(&buf) {
                    assert!(used <= buf.len(), "decoder claimed {used} of {}", buf.len());
                }
                let _ = wire::decode_header(&buf);
            }
        }
        // Every truncation point.
        for cut in 0..original.len() {
            let _ = wire::decode_chunk(&original[..cut]);
        }
        // Seeded multi-byte mangle: 1..=4 bytes rewritten per iteration.
        let mut state = 0x1D_F00Du64;
        let mut next = move |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m
        };
        for _ in 0..2_000 {
            let mut buf = original.clone();
            for _ in 0..=next(4) {
                let at = next(buf.len());
                buf[at] = next(256) as u8;
            }
            let _ = wire::decode_chunk(&buf);
        }
    }
}

/// The same mangling applied at the packet level: a frame holding every
/// exemplar chunk, bit-flipped everywhere, must always unpack to a typed
/// result — and an adversarial `SIZE`/`LEN` pair claiming a near-2^48
/// payload must be refused as `OversizedLen` before any allocation.
#[test]
fn packet_unpack_survives_systematic_mangling() {
    use chunks::core::error::CoreError;
    use chunks::core::packet::unpack;

    let frame: Vec<u8> = valid_exemplars().concat();
    for at in 0..frame.len() {
        for bit in 0..8 {
            let mut buf = frame.clone();
            buf[at] ^= 1u8 << bit;
            let _ = unpack(&Packet { bytes: buf.into() });
        }
    }
    // Hostile length claim: SIZE = 0xFFFF, LEN = 0xFFFF_FFFF.
    let mut buf = frame;
    buf[2] = 0xFF;
    buf[3] = 0xFF;
    buf[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
    assert!(matches!(
        wire::decode_chunk(&buf),
        Err(CoreError::OversizedLen { .. })
    ));
}

/// A real multi-chunk frame from the sender (data + ED + padding marker).
fn real_frame() -> Vec<u8> {
    let mut tx = Sender::new(SenderConfig {
        params: params(),
        layout: layout(),
        mtu: 512,
        min_tpdu_elements: 4,
        max_tpdu_elements: 32,
    });
    tx.submit_simple(&[0x3Cu8; 96], 0xE, false);
    let packets = tx.packets_for_pending().unwrap();
    packets[0].bytes.to_vec()
}

/// Every truncation of a real frame — including the cuts that land
/// mid-label, inside the 32-byte header — must be rejected by the zero-copy
/// path without panicking, exactly as the owned `unpack` rejects it. A
/// truncated packet is whole-packet-rejected: nothing is delivered from it.
#[test]
fn zero_copy_path_rejects_every_mid_label_truncation() {
    use chunks::core::packet::{unpack, validate};

    let frame = real_frame();
    for cut in 0..frame.len() {
        let packet = Packet {
            bytes: frame[..cut].to_vec().into(),
        };
        let v = validate(&packet);
        let u = unpack(&packet);
        assert_eq!(
            v.is_err(),
            u.is_err(),
            "cut at {cut}: validate and unpack must agree"
        );
        let mut rx = Receiver::new(DeliveryMode::Immediate, params(), layout(), 4096);
        let _ = rx.handle_packet(&packet, 0);
        if v.is_err() {
            assert_eq!(rx.stats.bad_packets, 1, "cut at {cut} must count as bad");
            assert_eq!(rx.stats.chunks_accepted, 0, "atomic reject at cut {cut}");
        }
    }
}

/// The streaming span walk never yields a span past the `Bytes` tail, even
/// on mangled frames, and every span a validated packet yields decodes to a
/// payload that *borrows* the packet's buffer — pointer-provably no copy.
#[test]
fn spans_stay_inside_the_buffer_and_payloads_borrow_it() {
    use chunks::core::packet::{spans, validate};

    let original = real_frame();
    let mut state = 0xBEEFu64;
    let mut next = move |m: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % m
    };
    for round in 0..4_000 {
        let mut buf = original.clone();
        // Rounds 0.. mangle 0–3 bytes (round 0 leaves the frame valid).
        for _ in 0..next(4).min(round) {
            let at = next(buf.len());
            buf[at] = next(256) as u8;
        }
        let packet = Packet { bytes: buf.into() };
        if validate(&packet).is_err() {
            continue;
        }
        let range = packet.bytes.as_ptr_range();
        for (at, end) in spans(&packet) {
            assert!(
                end <= packet.bytes.len() && at < end,
                "span ({at}, {end}) exceeds {} bytes",
                packet.bytes.len()
            );
            let (chunk, used) = wire::decode_chunk_at(&packet.bytes, at)
                .expect("validated packet must decode at every span");
            assert_eq!(at + used, end, "span length disagrees with decode");
            if !chunk.payload.is_empty() {
                let p = chunk.payload.as_ptr_range();
                assert!(
                    p.start >= range.start && p.end <= range.end,
                    "payload was copied out of the packet buffer"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A batch boundary that splits a chunk header across two packets must
    /// reject both fragments cleanly — serial `ingest_batch` and the
    /// parallel dispatcher alike — with no panic and no partial delivery
    /// from the malformed halves.
    #[test]
    fn batch_boundary_splitting_a_chunk_header_rejects_cleanly(split in 1usize..512) {
        use chunks::core::packet::{spans, validate};
        use chunks::transport::{ConnSpec, Engine, ParallelReceiver, Schedule};

        let frame = real_frame();
        let split = split % frame.len();
        prop_assume!(split != 0);
        // Only cuts that land strictly *inside* a chunk: a boundary-aligned
        // split yields two well-formed packets, which is not this test.
        let whole = Packet { bytes: frame.clone().into() };
        prop_assume!(!spans(&whole).any(|(at, end)| split == at || split == end));
        let batch = [
            Packet { bytes: frame[..split].to_vec().into() },
            Packet { bytes: frame[split..].to_vec().into() },
        ];
        let bad = batch.iter().filter(|p| validate(p).is_err()).count() as u64;
        // A mid-chunk cut corrupts at least the head fragment (its last
        // chunk is truncated), usually the tail too.
        prop_assert!(bad >= 1);

        let mut rx = Receiver::new(DeliveryMode::Immediate, params(), layout(), 4096);
        let mut out = Vec::new();
        rx.ingest_batch(&batch, 0, &mut out);
        prop_assert_eq!(rx.stats.bad_packets, bad);

        let mut pr = ParallelReceiver::new(
            2,
            Engine::Virtual(Schedule::Fair),
            vec![ConnSpec::new(params(), layout(), DeliveryMode::Immediate, 4096)],
        );
        pr.ingest_batch(&batch, 0);
        let outcome = pr.finish();
        prop_assert_eq!(outcome.dispatch.bad_packets, bad);
        prop_assert_eq!(outcome.dispatch.decode_errors, 0);
    }
}
