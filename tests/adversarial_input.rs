//! Adversarial input at the system level: the full receiver, the
//! demultiplexer, and the baseline decoders survive arbitrary bytes and
//! truncated/bit-flipped real traffic.

use chunks::baseline::aal::{Cell, CellReassembler};
use chunks::baseline::ip::{IpPacket, IpReassembler};
use chunks::baseline::xtp::{decode_super, XtpPdu};
use chunks::core::packet::Packet;
use chunks::transport::{
    AckInfo, ConnectionDemux, ConnectionParams, DeliveryMode, Receiver, Sender, SenderConfig,
    Signal,
};
use chunks::wsc::InvariantLayout;
use proptest::prelude::*;

fn params() -> ConnectionParams {
    ConnectionParams {
        conn_id: 5,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: 32,
    }
}

fn layout() -> InvariantLayout {
    InvariantLayout::with_data_symbols(2048)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn receiver_survives_random_packets(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512), 1..16),
    ) {
        let mut rx = Receiver::new(DeliveryMode::Immediate, params(), layout(), 4096);
        for (i, f) in frames.iter().enumerate() {
            let _ = rx.handle_packet(&Packet { bytes: f.clone().into() }, i as u64);
        }
    }

    #[test]
    fn receiver_survives_bitflipped_real_traffic(
        flip_byte in any::<usize>(),
        flip_bit in 0usize..8,
        mode_idx in 0usize..3,
    ) {
        let mode = [DeliveryMode::Immediate, DeliveryMode::Reorder, DeliveryMode::Reassemble][mode_idx];
        let mut tx = Sender::new(SenderConfig {
            params: params(),
            layout: layout(),
            mtu: 256,
            min_tpdu_elements: 4,
            max_tpdu_elements: 64,
        });
        tx.submit_simple(&[0xA5u8; 200], 0xE, false);
        let packets = tx.packets_for_pending().unwrap();
        let mut rx = Receiver::new(mode, params(), layout(), 4096);
        for (i, p) in packets.iter().enumerate() {
            let mut raw = p.bytes.to_vec();
            if i == 0 && !raw.is_empty() {
                let at = flip_byte % raw.len();
                raw[at] ^= 1 << flip_bit;
            }
            let _ = rx.handle_packet(&Packet { bytes: raw.into() }, i as u64);
        }
        let _ = rx.expire_incomplete();
        // Whatever happened, the receiver must not have delivered data that
        // differs from the original on a *verified* prefix... unless the
        // flip missed (hit padding) and everything verified.
        if rx.verified_prefix() == 200 && rx.stats.tpdus_failed == 0 {
            prop_assert_eq!(&rx.app_data()[..200], &[0xA5u8; 200][..]);
        }
    }

    #[test]
    fn demux_survives_random_packets(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256), 1..8),
    ) {
        let mut demux = ConnectionDemux::new();
        demux.register(5, Receiver::new(DeliveryMode::Immediate, params(), layout(), 1024));
        for f in &frames {
            let _ = demux.handle_packet(&Packet { bytes: f.clone().into() }, 0);
        }
    }

    #[test]
    fn control_decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Signal::decode(&bytes);
        let _ = AckInfo::decode(&bytes);
        let _ = IpPacket::decode(&bytes);
        let _ = XtpPdu::decode(&bytes);
        let _ = decode_super(&bytes);
    }

    #[test]
    fn ip_reassembler_survives_random_fragments(
        frags in proptest::collection::vec(
            (any::<u32>(), any::<u16>(), any::<bool>(),
             proptest::collection::vec(any::<u8>(), 0..64)), 1..32),
    ) {
        let mut r = IpReassembler::new(4096);
        for (id, offset, mf, payload) in frags {
            let p = IpPacket {
                id,
                offset: offset as u32,
                mf,
                payload: payload.into(),
            };
            let _ = r.offer(p);
        }
    }

    #[test]
    fn aal5_reassembler_survives_random_cells(
        cells in proptest::collection::vec(
            (any::<[u8; 48]>(), any::<bool>()), 1..32),
    ) {
        let mut r = CellReassembler::new();
        for (payload, eof) in cells {
            let _ = r.push(&Cell { payload, eof });
        }
    }
}
