//! Differential harness: the parallel receive pipeline is observably
//! equivalent to the serial path on every seeded scenario.
//!
//! Each scenario plays a closed-loop transfer (fragmentation, reordering,
//! duplication, loss, multipath, corruption — one [`Profile`] each) through
//! the serial reference once, recording the receive-side trace, then replays
//! the identical trace into a fresh serial demux and into the parallel
//! pipeline at worker counts {1, 2, 4, 8}. Everything observable must match:
//! delivered TPDU bytes, per-TPDU WSC-2 digests, accept/reject verdicts,
//! receiver statistics, acknowledgments, event streams, control events,
//! routed-chunk counters, and the folded session transcript digest.
//!
//! Scenario count: 200 in release, 24 in debug, `PARALLEL_SCENARIOS`
//! overrides both (see `just test-parallel`).

mod common;

use chunks::transport::{Engine, Schedule};
use common::{replay_parallel, replay_serial, replay_serial_legacy, scenario_count, scenarios};

#[test]
fn parallel_pipeline_equals_serial_path() {
    let all = scenarios(scenario_count());
    let mut delivered_total = 0u64;
    let mut failed_total = 0u64;
    for scenario in &all {
        let trace = scenario.generate_trace();
        assert!(
            trace
                .iter()
                .any(|op| matches!(op, common::TraceOp::Packet { .. })),
            "{}: trace must carry frames",
            scenario.label()
        );
        let serial = replay_serial(scenario, &trace);
        for obs in serial.conns.values() {
            delivered_total += obs.digests.len() as u64;
            failed_total += obs
                .events
                .iter()
                .filter(|e| matches!(e, chunks::transport::RxEvent::TpduFailed { .. }))
                .count() as u64;
        }
        for workers in [1usize, 2, 4, 8] {
            let parallel =
                replay_parallel(scenario, &trace, workers, Engine::Virtual(Schedule::Fair));
            assert_eq!(
                parallel,
                serial,
                "{}: virtual engine, {workers} workers",
                scenario.label()
            );
        }
        // Exercise the real threaded engine on a slice of the matrix (it
        // runs the same worker code; the schedule tests cover interleaving).
        if scenario.index % 8 == 0 {
            let parallel = replay_parallel(scenario, &trace, 4, Engine::Threads);
            assert_eq!(
                parallel,
                serial,
                "{}: threads engine, 4 workers",
                scenario.label()
            );
        }
    }
    // The matrix must actually exercise both verdict channels.
    assert!(delivered_total > 0, "no scenario delivered a TPDU");
    assert!(
        failed_total > 0,
        "no scenario rejected a TPDU — corruption profiles not biting"
    );
}

#[test]
fn zero_copy_path_equals_legacy_owned_oracle() {
    // The borrow-vs-owned differential: every seeded scenario goes through
    // the pre-refactor owned decode path (`set_legacy_owned`, the oracle)
    // and the zero-copy borrow path. Deliveries must be byte-identical and
    // every observable — digests, verdicts, stats, acks, event streams —
    // must match exactly.
    let all = scenarios(scenario_count());
    for scenario in &all {
        let trace = scenario.generate_trace();
        let owned = replay_serial_legacy(scenario, &trace);
        let borrowed = replay_serial(scenario, &trace);
        assert_eq!(
            borrowed,
            owned,
            "{}: zero-copy path diverged from the owned oracle",
            scenario.label()
        );
    }
}

#[test]
fn session_reliability_identical_across_decode_paths() {
    // Full closed-loop sessions (timers, acks, repair) with the inbound
    // receiver on each decode path: delivered bytes and the complete
    // `ReliabilityStats` snapshot must be identical.
    use chunks::transport::{
        ConnectionParams, DeliveryMode, ReliabilityStats, SenderConfig, Session,
    };
    use chunks::wsc::InvariantLayout;

    let endpoint = |local: u32, remote: u32, legacy: bool| {
        let params = |conn_id: u32| ConnectionParams {
            conn_id,
            elem_size: 1,
            initial_csn: 0,
            tpdu_elements: 32,
        };
        let layout = InvariantLayout::with_data_symbols(2048);
        let mut s = Session::new(
            SenderConfig {
                params: params(local),
                layout,
                mtu: 256,
                min_tpdu_elements: 4,
                max_tpdu_elements: 256,
            },
            params(remote),
            layout,
            DeliveryMode::Immediate,
            1 << 12,
        );
        s.set_legacy_owned(legacy);
        s
    };

    let converse = |legacy: bool| -> (Vec<u8>, Vec<u8>, ReliabilityStats, ReliabilityStats) {
        let mut a = endpoint(1, 2, legacy);
        let mut b = endpoint(2, 1, legacy);
        let msg_a: Vec<u8> = (0..700).map(|i| i as u8).collect();
        let msg_b: Vec<u8> = (0..500).map(|i| (i * 7) as u8).collect();
        a.send(&msg_a, 0xA, false);
        b.send(&msg_b, 0xB, false);
        // Deterministic ~20% loss, identical for both runs.
        let mut state = 0x5EEDu64;
        let mut lose = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33).is_multiple_of(5)
        };
        for round in 0..64u64 {
            let now = round * 1_000_000;
            let a_out = a.pump(now).unwrap();
            let survivors: Vec<_> = a_out.into_iter().filter(|_| !lose()).collect();
            b.handle_packets(&survivors, now);
            let b_out = b.pump(now).unwrap();
            let survivors: Vec<_> = b_out.into_iter().filter(|_| !lose()).collect();
            a.handle_packets(&survivors, now);
            if a.outbound_done() && b.outbound_done() {
                break;
            }
        }
        (
            a.received().to_vec(),
            b.received().to_vec(),
            a.reliability(),
            b.reliability(),
        )
    };

    let (a_owned, b_owned, ra_owned, rb_owned) = converse(true);
    let (a_zc, b_zc, ra_zc, rb_zc) = converse(false);
    assert_eq!(a_zc, a_owned, "A-side deliveries diverged");
    assert_eq!(b_zc, b_owned, "B-side deliveries diverged");
    assert_eq!(ra_zc, ra_owned, "A-side ReliabilityStats diverged");
    assert_eq!(rb_zc, rb_owned, "B-side ReliabilityStats diverged");
}

#[test]
fn clean_profile_delivers_every_byte_at_every_worker_count() {
    // A focused, fully-converging case: on the clean profile every message
    // byte must land in the application space, bit-exact, for any worker
    // count — not merely "equal to serial".
    let scenario = common::Scenario {
        index: usize::MAX,
        profile: chunks::netsim::Profile::Clean,
        seed: 0xC1EA_4000,
        conns: 5,
        message_len: 2048,
        mode: chunks::transport::DeliveryMode::Immediate,
        elem_size: 1,
        tpdu_elements: 64,
        mtu: 600,
        inject_control: false,
    };
    let trace = scenario.generate_trace();
    for workers in [1usize, 2, 4, 8] {
        let out = replay_parallel(&scenario, &trace, workers, Engine::Virtual(Schedule::Fair));
        for id in scenario.conn_ids() {
            let obs = &out.conns[&id];
            let want = scenario.message(id);
            assert_eq!(
                &obs.app[..want.len()],
                &want[..],
                "conn {id} at {workers} workers"
            );
            assert_eq!(obs.verified_prefix, want.len() as u64);
            assert!(obs.failed.is_empty());
        }
    }
}
