//! Differential harness: the parallel receive pipeline is observably
//! equivalent to the serial path on every seeded scenario.
//!
//! Each scenario plays a closed-loop transfer (fragmentation, reordering,
//! duplication, loss, multipath, corruption — one [`Profile`] each) through
//! the serial reference once, recording the receive-side trace, then replays
//! the identical trace into a fresh serial demux and into the parallel
//! pipeline at worker counts {1, 2, 4, 8}. Everything observable must match:
//! delivered TPDU bytes, per-TPDU WSC-2 digests, accept/reject verdicts,
//! receiver statistics, acknowledgments, event streams, control events,
//! routed-chunk counters, and the folded session transcript digest.
//!
//! Scenario count: 200 in release, 24 in debug, `PARALLEL_SCENARIOS`
//! overrides both (see `just test-parallel`).

mod common;

use chunks::transport::{Engine, Schedule};
use common::{replay_parallel, replay_serial, scenario_count, scenarios};

#[test]
fn parallel_pipeline_equals_serial_path() {
    let all = scenarios(scenario_count());
    let mut delivered_total = 0u64;
    let mut failed_total = 0u64;
    for scenario in &all {
        let trace = scenario.generate_trace();
        assert!(
            trace
                .iter()
                .any(|op| matches!(op, common::TraceOp::Packet { .. })),
            "{}: trace must carry frames",
            scenario.label()
        );
        let serial = replay_serial(scenario, &trace);
        for obs in serial.conns.values() {
            delivered_total += obs.digests.len() as u64;
            failed_total += obs
                .events
                .iter()
                .filter(|e| matches!(e, chunks::transport::RxEvent::TpduFailed { .. }))
                .count() as u64;
        }
        for workers in [1usize, 2, 4, 8] {
            let parallel =
                replay_parallel(scenario, &trace, workers, Engine::Virtual(Schedule::Fair));
            assert_eq!(
                parallel,
                serial,
                "{}: virtual engine, {workers} workers",
                scenario.label()
            );
        }
        // Exercise the real threaded engine on a slice of the matrix (it
        // runs the same worker code; the schedule tests cover interleaving).
        if scenario.index % 8 == 0 {
            let parallel = replay_parallel(scenario, &trace, 4, Engine::Threads);
            assert_eq!(
                parallel,
                serial,
                "{}: threads engine, 4 workers",
                scenario.label()
            );
        }
    }
    // The matrix must actually exercise both verdict channels.
    assert!(delivered_total > 0, "no scenario delivered a TPDU");
    assert!(
        failed_total > 0,
        "no scenario rejected a TPDU — corruption profiles not biting"
    );
}

#[test]
fn clean_profile_delivers_every_byte_at_every_worker_count() {
    // A focused, fully-converging case: on the clean profile every message
    // byte must land in the application space, bit-exact, for any worker
    // count — not merely "equal to serial".
    let scenario = common::Scenario {
        index: usize::MAX,
        profile: chunks::netsim::Profile::Clean,
        seed: 0xC1EA_4000,
        conns: 5,
        message_len: 2048,
        mode: chunks::transport::DeliveryMode::Immediate,
        elem_size: 1,
        tpdu_elements: 64,
        mtu: 600,
        inject_control: false,
    };
    let trace = scenario.generate_trace();
    for workers in [1usize, 2, 4, 8] {
        let out = replay_parallel(&scenario, &trace, workers, Engine::Virtual(Schedule::Fair));
        for id in scenario.conn_ids() {
            let obs = &out.conns[&id];
            let want = scenario.message(id);
            assert_eq!(
                &obs.app[..want.len()],
                &want[..],
                "conn {id} at {workers} workers"
            );
            assert_eq!(obs.verified_prefix, want.len() as u64);
            assert!(obs.failed.is_empty());
        }
    }
}
