//! Every committed `BENCH_*.json` summary must parse and open with a
//! complete `meta` block: the bench name, the exact regenerate command, and
//! the source revision it was generated from. The `bench-check` gate (and
//! any human reading the file a year later) depends on those three fields.

use chunks::experiments::benchjson::{parse, Value};

const BENCH_FILES: [&str; 8] = [
    "BENCH_lineage.json",
    "BENCH_soak.json",
    "BENCH_overlap.json",
    "BENCH_parallel.json",
    "BENCH_hotpath.json",
    "BENCH_scale.json",
    "BENCH_wsc.json",
    "BENCH_obs.json",
];

fn load(file: &str) -> Value {
    let path = format!("{}/{}", env!("CARGO_MANIFEST_DIR"), file);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{file}: {e}"));
    parse(&src).unwrap_or_else(|e| panic!("{file}: {e}"))
}

#[test]
fn every_bench_file_has_a_complete_meta_block() {
    for file in BENCH_FILES {
        let v = load(file);
        let meta = v
            .get("meta")
            .unwrap_or_else(|| panic!("{file}: no `meta` object"));
        for key in ["bench", "regenerate", "describe"] {
            let s = meta
                .get(key)
                .and_then(Value::as_str)
                .unwrap_or_else(|| panic!("{file}: meta.{key} missing or not a string"));
            assert!(!s.is_empty(), "{file}: meta.{key} is empty");
        }
        // The regenerate command must be runnable as written: it names
        // either a cargo invocation or a just recipe.
        let regen = meta.get("regenerate").and_then(Value::as_str).unwrap();
        assert!(
            regen.contains("cargo ") || regen.contains("just "),
            "{file}: meta.regenerate does not name a command: {regen}"
        );
    }
}

#[test]
fn every_bench_file_carries_nonempty_results() {
    for file in BENCH_FILES {
        let v = load(file);
        let results = v
            .get("results")
            .and_then(Value::as_arr)
            .unwrap_or_else(|| panic!("{file}: no `results` array"));
        assert!(!results.is_empty(), "{file}: empty `results`");
        for row in results {
            assert!(
                row.as_obj().is_some(),
                "{file}: results rows must be objects"
            );
        }
    }
}

#[test]
fn wsc_rows_pin_backend_and_batch_width() {
    // The WSC snapshot is a backend × batch-width sweep: every row must say
    // which GF(2^32) backend produced it ("tables", "clmul", or "ref" for
    // the bit-serial oracle arm) and at what batch width, or the numbers
    // can't be compared across machines.
    let v = load("BENCH_wsc.json");
    let results = v.get("results").and_then(Value::as_arr).unwrap();
    for row in results {
        let id = row.get("id").and_then(Value::as_str).unwrap_or("<no id>");
        let backend = row
            .get("backend")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("{id}: no `backend` string"));
        assert!(
            ["tables", "clmul", "ref"].contains(&backend),
            "{id}: unknown backend {backend:?}"
        );
        let batch = row
            .get("batch")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("{id}: no numeric `batch` width"));
        assert!(
            batch >= 1.0 && batch.fract() == 0.0,
            "{id}: batch width must be a positive integer, got {batch}"
        );
    }
}

#[test]
fn hotpath_rows_pin_the_three_legs_and_the_alloc_columns() {
    // The receive hot-path snapshot must carry all three legs, and every
    // row must say how fast it went and how much it allocated — the
    // allocs_per_chunk column is the whole point of the file. Wall-clock
    // numbers vary by host, so only shapes are pinned here; the zero-copy
    // throughput and zero-allocation bars are enforced by the experiment's
    // own passes() when the file is regenerated.
    let v = load("BENCH_hotpath.json");
    let results = v.get("results").and_then(Value::as_arr).unwrap();
    let mut legs: Vec<&str> = Vec::new();
    for row in results {
        let leg = row
            .get("leg")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("hotpath row without a `leg` string"));
        legs.push(leg);
        for key in [
            "chunks",
            "wire_bytes",
            "mib_s",
            "chunks_per_s",
            "steady_allocs",
            "allocs_per_chunk",
            "delivered_bytes",
        ] {
            row.get(key)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("{leg}: no numeric `{key}`"));
        }
    }
    for want in ["zero-copy", "legacy-owned", "parallel"] {
        assert!(legs.contains(&want), "missing hotpath leg {want:?}");
    }
}

#[test]
fn obs_rows_pin_the_sweep_and_gate_the_on_null_overhead() {
    // The observability snapshot is a (leg × sink-mode) sweep. Every row
    // must carry the full coordinate and the cost columns, and the
    // committed on-null rows of the two hotpath legs are *value*-gated:
    // always-on telemetry costs at most 5% throughput and zero steady-state
    // allocations, or the file cannot be committed.
    let v = load("BENCH_obs.json");
    assert_eq!(
        v.get("recorded"),
        Some(&Value::Bool(true)),
        "committed obs snapshot must prove its on-null sinks recorded"
    );
    let alloc_counting = v.get("alloc_counting") == Some(&Value::Bool(true));
    let results = v.get("results").and_then(Value::as_arr).unwrap();
    let mut cells: Vec<(String, String)> = Vec::new();
    for row in results {
        let leg = row
            .get("leg")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("obs row without a `leg` string"));
        let mode = row
            .get("mode")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("{leg}: obs row without a `mode` string"));
        assert!(
            ["serial", "parallel", "demux"].contains(&leg),
            "unknown obs leg {leg:?}"
        );
        assert!(
            ["obs-off", "on-null", "on-recording"].contains(&mode),
            "unknown obs mode {mode:?}"
        );
        for key in [
            "wall_ms",
            "mib_s",
            "overhead_pct",
            "steady_allocs",
            "delivered_bytes",
        ] {
            row.get(key)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("{leg}/{mode}: no numeric `{key}`"));
        }
        if mode == "on-null" && leg != "demux" {
            let overhead = row.get("overhead_pct").and_then(Value::as_f64).unwrap();
            assert!(
                overhead <= 5.0,
                "{leg}/on-null: committed overhead {overhead}% exceeds the 5% bar"
            );
            if alloc_counting {
                assert_eq!(
                    row.get("steady_allocs").and_then(Value::as_f64),
                    Some(0.0),
                    "{leg}/on-null: committed row must show zero steady allocations"
                );
            }
        }
        cells.push((leg.to_owned(), mode.to_owned()));
    }
    for leg in ["serial", "parallel", "demux"] {
        for mode in ["obs-off", "on-null", "on-recording"] {
            assert!(
                cells.contains(&(leg.to_owned(), mode.to_owned())),
                "missing obs cell {leg}/{mode}"
            );
        }
    }
}

#[test]
fn overlap_rows_pin_the_full_cell_coordinates_and_the_two_proofs() {
    // Every row of the adversarial sweep must say exactly which cell it is
    // (policy × attack × budget) and carry the two per-cell proofs: the
    // serial/parallel equivalence bit and the corrupted-delivery count
    // (which the committed file must show as zero — WSC-2 is the integrity
    // authority under every overlap policy).
    let v = load("BENCH_overlap.json");
    let results = v.get("results").and_then(Value::as_arr).unwrap();
    assert_eq!(results.len(), 18, "3 policies × 3 attacks × 2 budgets");
    for row in results {
        let coord = |key: &str, allowed: &[&str]| {
            let s = row
                .get(key)
                .and_then(Value::as_str)
                .unwrap_or_else(|| panic!("overlap row: no `{key}` string"));
            assert!(allowed.contains(&s), "overlap row: unknown {key} {s:?}");
        };
        coord("policy", &["reject", "first-wins", "last-wins"]);
        coord(
            "attack",
            &[
                "shifted-duplicate",
                "conflicting-rewrite",
                "tiny-fragment-flood",
            ],
        );
        coord("budget", &["unlimited", "capped"]);
        assert_eq!(
            row.get("parallel_identical"),
            Some(&Value::Bool(true)),
            "committed overlap row must be serial/parallel byte-identical"
        );
        assert_eq!(
            row.get("corrupted_deliveries").and_then(Value::as_f64),
            Some(0.0),
            "committed overlap row must never deliver corrupted bytes"
        );
    }
}

#[test]
fn scale_rows_pin_all_six_cells_and_the_accounting_columns() {
    // The scale snapshot must carry every cell of the sweep, and every row
    // must say how many connections it held, what it delivered, and how the
    // table accounted for admissions, pool reuse, evictions and memory —
    // the accounting columns are what the file exists to witness. Rates are
    // host wall-clock, so only shapes are pinned; the million-connection
    // and zero-allocation bars are enforced by the experiment's own
    // passes() when the file is regenerated.
    let v = load("BENCH_scale.json");
    for key in ["seed", "target_conns"] {
        v.get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("scale: no numeric `{key}`"));
    }
    assert_eq!(
        v.get("deterministic"),
        Some(&Value::Bool(true)),
        "committed scale snapshot must replay byte-identically"
    );
    let results = v.get("results").and_then(Value::as_arr).unwrap();
    let mut cells: Vec<&str> = Vec::new();
    for row in results {
        let cell = row
            .get("cell")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("scale row without a `cell` string"));
        cells.push(cell);
        for key in [
            "conns",
            "packets",
            "chunks",
            "wire_bytes",
            "conns_per_s",
            "mib_s",
            "delivered_bytes",
            "admissions",
            "pooled",
            "evictions",
            "refusals",
            "peak_live",
            "max_probe",
            "mem_per_conn",
            "steady_allocs",
            "p99_verify_ns",
        ] {
            row.get(key)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("{cell}: no numeric `{key}`"));
        }
        for key in ["digests_match", "deterministic", "ok"] {
            assert_eq!(
                row.get(key),
                Some(&Value::Bool(true)),
                "{cell}: committed scale row must have {key} = true"
            );
        }
    }
    for want in [
        "capacity-lru",
        "churn-equiv",
        "budget-bound",
        "zipf-faults",
        "million-serial",
        "million-parallel",
    ] {
        assert!(cells.contains(&want), "missing scale cell {want:?}");
    }
}

#[test]
fn lineage_rows_expose_budget_and_quantiles_for_every_delay_metric() {
    let v = load("BENCH_lineage.json");
    let results = v.get("results").and_then(Value::as_arr).unwrap();
    for row in results {
        let profile = row.get("profile").and_then(Value::as_str).unwrap();
        for section in ["budget", "quantiles"] {
            let obj = row
                .get(section)
                .and_then(Value::as_obj)
                .unwrap_or_else(|| panic!("{profile}: no `{section}` object"));
            let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(
                keys,
                chunks::experiments::lineage::DELAY_METRICS.to_vec(),
                "{profile}: {section} must cover every delay metric in lifecycle order"
            );
        }
        assert_eq!(
            row.get("deterministic"),
            Some(&Value::Bool(true)),
            "{profile}: committed lineage row must be deterministic"
        );
    }
}
