//! Catalogue drift guard: every metric name the workspace emits (or reads)
//! must be declared in the obs crate's [`CATALOGUE`], and every
//! `as_metrics` adapter must map its stats onto catalogued names. A new
//! instrumentation site with a typo'd or undeclared name fails here, not in
//! a dashboard a month later.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use chunks_obs::CATALOGUE;
use chunks_transport::{DispatchStats, ReliabilityStats, TableStats};

fn catalogued(name: &str) -> bool {
    CATALOGUE.iter().any(|spec| spec.name == name)
}

/// Every `.rs` file under the workspace's source and test roots.
fn workspace_sources() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    let mut stack = vec![root.join("src"), root.join("tests"), root.join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("readable source dir") {
            let path = entry.expect("readable entry").path();
            if path.is_dir() {
                // Build artifacts carry generated .rs files; skip them.
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Extracts every string literal passed as the first argument of a
/// `counter(…)` or `observe(…)` call in `text`, tolerating a rustfmt line
/// break between the paren and the literal. Dumb and strict on purpose:
/// any quoted first argument at such a site is taken as a metric name.
fn metric_literals(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    // The needles are split literals so this file's own scan of itself
    // does not mistake the needle array for an instrumentation site.
    for needle in [concat!("count", "er("), concat!("obs", "erve(")] {
        let mut i = 0;
        while let Some(k) = text[i..].find(needle) {
            let after = i + k + needle.len();
            let rest = &text[after..];
            let skipped = rest.len() - rest.trim_start().len();
            let at = after + skipped;
            i = after;
            if !text[at..].starts_with('"') {
                continue;
            }
            if let Some(end) = text[at + 1..].find('"') {
                out.push(text[at + 1..at + 1 + end].to_string());
                i = at + 1 + end + 1;
            }
        }
    }
    out
}

#[test]
fn every_emitted_metric_name_is_catalogued() {
    let files = workspace_sources();
    assert!(files.len() > 40, "workspace scan found too few sources");
    let mut seen = BTreeSet::new();
    for file in &files {
        let text = std::fs::read_to_string(file).expect("readable source");
        for name in metric_literals(&text) {
            assert!(
                catalogued(&name),
                "{}: metric `{name}` is not in the CATALOGUE",
                file.display()
            );
            seen.insert(name);
        }
    }
    // The scan saw a meaningful slice of the catalogue, so the extractor
    // itself has not silently broken.
    assert!(
        seen.len() >= 40,
        "metric scan extracted suspiciously few names ({})",
        seen.len()
    );
}

#[test]
fn as_metrics_adapters_stay_on_catalogued_names() {
    for (name, _) in ReliabilityStats::default().as_metrics() {
        assert!(catalogued(name), "ReliabilityStats maps to `{name}`");
    }
    for (name, _) in DispatchStats::default().as_metrics() {
        assert!(catalogued(name), "DispatchStats maps to `{name}`");
    }
    for (name, _) in TableStats::default().as_metrics() {
        assert!(catalogued(name), "TableStats maps to `{name}`");
    }
}

#[test]
fn catalogue_is_sorted_and_unique() {
    // Lookup is a binary search; a misordered or duplicated entry would
    // silently shadow a neighbour.
    for pair in CATALOGUE.windows(2) {
        assert!(
            pair[0].name < pair[1].name,
            "CATALOGUE out of order at `{}` >= `{}`",
            pair[0].name,
            pair[1].name
        );
    }
}
