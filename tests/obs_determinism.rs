//! Observability guarantees, checked end to end:
//!
//! 1. **Determinism** — the same seeded soak scenario exports the
//!    byte-identical JSON-lines trace (and the identical metric snapshot)
//!    on every run. Traces are evidence, not samples.
//! 2. **Differential transparency** — attaching a recording sink changes
//!    *nothing observable*: delivered bytes, digests, outcomes and verdicts
//!    are bit-identical to the `NullSink` run, on both the session path and
//!    the parallel pipeline.
//! 3. **Span transparency** — the lifecycle-span layer obeys the same two
//!    rules: a NullSink run is bit-identical to a recording run, and the
//!    per-chunk lineage export is byte-identical across replays of every
//!    seeded netsim profile.
//! 4. **Doc sync** — `docs/OBSERVABILITY.md` names every catalogued metric
//!    and every event variant, so the documented surface cannot drift from
//!    the exported one.

use chunks::experiments::{lineage, soak};
use chunks_netsim::Profile;
use chunks_obs::{AlwaysOnSink, RecordingSink, CATALOGUE};
use chunks_transport::{
    shard_of, ConnSpec, ConnectionParams, DeliveryMode, Engine, ParallelReceiver, Schedule, Sender,
    SenderConfig,
};
use chunks_wsc::InvariantLayout;

const SEED: u64 = 0xC0451;

/// Scenarios covering all three outcomes (delivered / aborted / shed) plus
/// Byzantine label mutation — enough surface to exercise every event kind
/// the soak path can emit, without replaying the whole matrix twice.
const SCENARIOS: [&str; 4] = [
    "label-flips",
    "ack-loss-35",
    "ack-blackout-abort",
    "ack-blackout-shed",
];

fn scenario(name: &str) -> soak::SoakScenario {
    soak::fault_matrix()
        .into_iter()
        .find(|sc| sc.name == name)
        .expect("scenario exists")
}

#[test]
fn seeded_soak_traces_export_byte_identical_json_lines() {
    for name in SCENARIOS {
        let sc = scenario(name);
        let (s1, s2) = (
            RecordingSink::with_capacity(1 << 16),
            RecordingSink::with_capacity(1 << 16),
        );
        let r1 = soak::run_scenario_observed(&sc, SEED, s1.clone());
        let r2 = soak::run_scenario_observed(&sc, SEED, s2.clone());
        assert_eq!(r1, r2, "{name}: rows diverged across identical runs");
        assert_eq!(s1.trace_dropped(), 0, "{name}: ring too small for test");
        assert_eq!(
            s1.trace_json_lines(),
            s2.trace_json_lines(),
            "{name}: JSON-lines exports not byte-identical"
        );
        assert_eq!(
            s1.snapshot(),
            s2.snapshot(),
            "{name}: metric snapshots diverged"
        );
        assert!(
            !s1.events().is_empty(),
            "{name}: an observed faulty run must produce events"
        );
    }
}

#[test]
fn recording_sink_is_differentially_transparent_on_the_session_path() {
    for name in SCENARIOS {
        let sc = scenario(name);
        // `run_scenario` is the NullSink baseline by construction.
        let baseline = soak::run_scenario(&sc, SEED);
        let observed = soak::run_scenario_observed(&sc, SEED, RecordingSink::shared());
        assert_eq!(
            baseline, observed,
            "{name}: observing the run changed its outcome"
        );
    }
}

// --- lifecycle spans: transparency and lineage determinism ------------------

#[test]
fn soak_span_exports_are_byte_identical_across_replays() {
    for name in SCENARIOS {
        let sc = scenario(name);
        let (s1, s2) = (RecordingSink::shared(), RecordingSink::shared());
        soak::run_scenario_observed(&sc, SEED, s1.clone());
        soak::run_scenario_observed(&sc, SEED, s2.clone());
        assert!(
            !s1.span_records().is_empty(),
            "{name}: an observed run must record lifecycle spans"
        );
        assert_eq!(
            s1.span_json_lines(),
            s2.span_json_lines(),
            "{name}: span exports not byte-identical"
        );
        assert_eq!(
            s1.lineage().to_json(),
            s2.lineage().to_json(),
            "{name}: lineage exports not byte-identical"
        );
        assert_eq!(s1.span_orphan_closes(), 0, "{name}: orphan span closes");
    }
}

#[test]
fn null_sink_profile_transfers_match_recording_runs() {
    // The span layer must be invisible: driving the same seeded profile
    // transfer with the NullSink and with a recording sink produces the
    // bit-identical outcome (labels are parsed outside the fault RNG).
    for profile in Profile::ALL {
        let baseline = lineage::drive(profile, SEED, chunks_obs::null());
        let observed = lineage::drive(profile, SEED, RecordingSink::shared());
        assert_eq!(
            baseline,
            observed,
            "{}: observing the transfer changed its outcome",
            profile.name()
        );
    }
}

#[test]
fn lineage_exports_are_byte_identical_per_profile() {
    for profile in Profile::ALL {
        let (s1, s2) = (RecordingSink::shared(), RecordingSink::shared());
        lineage::drive(profile, SEED, s1.clone());
        lineage::drive(profile, SEED, s2.clone());
        assert!(
            !s1.span_records().is_empty(),
            "{}: a profile transfer must record spans",
            profile.name()
        );
        assert_eq!(
            s1.lineage().to_json(),
            s2.lineage().to_json(),
            "{}: lineage exports not byte-identical",
            profile.name()
        );
        assert_eq!(
            s1.span_json_lines(),
            s2.span_json_lines(),
            "{}: span exports not byte-identical",
            profile.name()
        );
        assert_eq!(
            s1.snapshot(),
            s2.snapshot(),
            "{}: metric snapshots diverged",
            profile.name()
        );
    }
}

// --- parallel pipeline differential ----------------------------------------

fn params(conn_id: u32) -> ConnectionParams {
    ConnectionParams {
        conn_id,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: 16,
    }
}

fn layout() -> InvariantLayout {
    InvariantLayout::with_data_symbols(1024)
}

fn spec(conn_id: u32) -> ConnSpec {
    ConnSpec::new(params(conn_id), layout(), DeliveryMode::Immediate, 512)
}

#[test]
fn recording_sink_is_differentially_transparent_on_the_parallel_path() {
    let conns = [1u32, 2, 3, 4, 5, 6, 7];
    let mut packets = Vec::new();
    for &id in &conns {
        let mut tx = Sender::new(SenderConfig {
            params: params(id),
            layout: layout(),
            mtu: 200,
            min_tpdu_elements: 2,
            max_tpdu_elements: 64,
        });
        let msg: Vec<u8> = (0..96)
            .map(|i| (id as u8).wrapping_mul(31).wrapping_add(i))
            .collect();
        tx.submit_simple(&msg, id, false);
        packets.extend(tx.packets_for_pending().unwrap());
    }

    let sink = RecordingSink::shared();
    let mut plain = ParallelReceiver::new(
        4,
        Engine::Virtual(Schedule::Seeded(SEED)),
        conns.iter().map(|&id| spec(id)).collect(),
    );
    let mut observed = ParallelReceiver::new_with_obs(
        4,
        Engine::Virtual(Schedule::Seeded(SEED)),
        conns.iter().map(|&id| spec(id)).collect(),
        sink.clone(),
    );
    for (i, p) in packets.iter().enumerate() {
        plain.ingest(p, i as u64);
        observed.ingest(p, i as u64);
    }
    let (a, b) = (plain.finish(), observed.finish());

    assert_eq!(a.transcript_digest, b.transcript_digest);
    assert_eq!(a.dispatch, b.dispatch);
    assert_eq!(a.worker_chunks, b.worker_chunks);
    assert_eq!(a.control, b.control);
    for &id in &conns {
        let (ra, rb) = (&a.conns[&id], &b.conns[&id]);
        assert_eq!(ra.receiver.app_data(), rb.receiver.app_data(), "conn {id}");
        assert_eq!(
            ra.receiver.delivered_digests(),
            rb.receiver.delivered_digests(),
            "conn {id}"
        );
        assert_eq!(ra.events, rb.events, "conn {id}");
        assert_eq!(ra.ack, rb.ack, "conn {id}");
    }

    // The observed pipeline did record: dispatch metrics and shard events.
    let snap = sink.snapshot();
    assert_eq!(
        snap.counter("transport.parallel.packets"),
        a.dispatch.packets
    );
    assert_eq!(
        snap.counter("transport.parallel.chunks_dispatched"),
        a.dispatch.chunks_dispatched
    );
    assert!(sink
        .events()
        .iter()
        .any(|e| e.event.name() == "ShardDispatched"));
    assert!(sink
        .events()
        .iter()
        .any(|e| e.event.name() == "MergeFolded"));
    // Every dispatch went to the worker `shard_of` names.
    for te in sink.events() {
        if let chunks_obs::Event::ShardDispatched { labels, worker } = te.event {
            assert_eq!(worker as usize, shard_of(labels.conn_id, 4));
        }
    }
}

// --- docs stay in sync with the exported surface ---------------------------

/// Every event variant name (kept in sync by the match in the test body —
/// adding a variant without extending this list fails the doc-sync test
/// only if the docs also miss it, but `Event::name` is exercised above).
const EVENT_NAMES: [&str; 15] = [
    "ChunkDecoded",
    "ChunkRejected",
    "ChunkMutated",
    "GroupDelivered",
    "GroupEvicted",
    "OverlapConflict",
    "PathChosen",
    "RetransmitFired",
    "BackoffApplied",
    "ShardDispatched",
    "MergeFolded",
    "VerdictReached",
    "ConnAdmitted",
    "ConnEvicted",
    "Degraded",
];

/// Every watchdog verdict name — the health surface the docs must cover.
const HEALTH_EVENT_NAMES: [&str; 3] = ["LivelockSuspected", "EvictionStorm", "PressureStuck"];

/// Extracts `](target)` markdown link targets. Deliberately dumb: code
/// spans can false-positive, so callers filter to plausible relative paths.
fn md_link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(k) = text[i..].find("](") {
        let start = i + k + 2;
        match text[start..].find(')') {
            Some(end) => {
                out.push(text[start..start + end].to_string());
                i = start + end + 1;
            }
            None => break,
        }
    }
    out
}

#[test]
fn doc_relative_links_all_resolve() {
    // Every relative link in README.md and docs/*.md must point at a file
    // that exists — the docs overhaul cross-links heavily, and a renamed
    // target must fail the suite, not a reader.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut docs = vec![root.join("README.md")];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs/ exists") {
        let p = entry.expect("readable docs entry").path();
        if p.extension().is_some_and(|e| e == "md") {
            docs.push(p);
        }
    }
    assert!(docs.len() > 5, "docs directory unexpectedly sparse");
    let mut checked = 0;
    for doc in &docs {
        let text = std::fs::read_to_string(doc).expect("doc readable");
        for target in md_link_targets(&text) {
            // External links, pure anchors, and code-span false positives
            // (anything with whitespace) are out of scope.
            if target.is_empty()
                || target.contains("://")
                || target.starts_with('#')
                || target.starts_with("mailto:")
                || target.contains(char::is_whitespace)
            {
                continue;
            }
            let path = target.split('#').next().unwrap_or(&target);
            let resolved = doc.parent().expect("doc has a parent").join(path);
            assert!(
                resolved.exists(),
                "{}: broken relative link `{target}` (resolved to {})",
                doc.display(),
                resolved.display()
            );
            checked += 1;
        }
    }
    assert!(checked > 20, "link checker found suspiciously few links");
}

#[test]
fn observability_doc_names_every_metric_and_event() {
    let doc = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/docs/OBSERVABILITY.md"
    ))
    .expect("docs/OBSERVABILITY.md exists");
    for spec in CATALOGUE {
        assert!(
            doc.contains(spec.name),
            "docs/OBSERVABILITY.md does not document metric `{}`",
            spec.name
        );
    }
    for name in EVENT_NAMES {
        assert!(
            doc.contains(name),
            "docs/OBSERVABILITY.md does not document event `{name}`"
        );
    }
    for name in HEALTH_EVENT_NAMES {
        assert!(
            doc.contains(name),
            "docs/OBSERVABILITY.md does not document health event `{name}`"
        );
    }
}

// --- flight recorder: dump-on-degradation is deterministic evidence ---------

#[test]
fn flight_recorder_dumps_are_byte_identical_across_replays() {
    // A seeded Byzantine ack blackout under `DegradePolicy::Abort` must end
    // in the typed `PeerUnreachable` verdict, and the always-on sink's
    // flight recorder must capture a postmortem on the `peer-unreachable`
    // trigger. Replaying the same seed must reproduce the dump byte for
    // byte — the postmortem is evidence, not a sample.
    let sc = scenario("ack-blackout-abort");
    let (s1, s2) = (AlwaysOnSink::shared(), AlwaysOnSink::shared());
    let r1 = soak::run_scenario_observed(&sc, SEED, s1.clone());
    let r2 = soak::run_scenario_observed(&sc, SEED, s2.clone());
    assert_eq!(r1, r2, "blackout rows diverged across identical runs");
    assert_eq!(r1.outcome, soak::Outcome::Aborted);

    let d1 = s1.dump_json_lines().expect("abort must arm a flight dump");
    let d2 = s2.dump_json_lines().expect("abort must arm a flight dump");
    assert_eq!(d1, d2, "flight dumps not byte-identical");

    let header = d1.lines().next().expect("dump has a header line");
    assert!(
        header.contains("\"trigger\": \"peer-unreachable\""),
        "dump header must name the trigger: {header}"
    );
    assert!(
        d1.lines().count() > 1,
        "dump must carry the recent-event window, not just the header"
    );
    // The always-on sink recorded the degradation in its registry too.
    assert_eq!(s1.snapshot().counter("obs.flight.dumps"), 1);
    assert!(s1.snapshot().counter("obs.flight.triggers") >= 1);
    assert_eq!(s1.snapshot(), s2.snapshot(), "metric snapshots diverged");
}

#[test]
fn always_on_sink_is_differentially_transparent_on_the_session_path() {
    // The production configuration (sharded counters, flight recorder
    // armed, verbose tracing off) must not change outcomes either.
    for name in SCENARIOS {
        let sc = scenario(name);
        let baseline = soak::run_scenario(&sc, SEED);
        let observed = soak::run_scenario_observed(&sc, SEED, AlwaysOnSink::shared());
        assert_eq!(
            baseline, observed,
            "{name}: the always-on sink changed the run's outcome"
        );
    }
}
