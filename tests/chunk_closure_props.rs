//! Property tests of the chunk closure and verification-fold algebra the
//! parallel pipeline rests on:
//!
//! * split-then-merge is the identity (Appendix C ∘ Appendix D = id);
//! * the WSC-2 TPDU invariant is unchanged by arbitrary split points and
//!   arbitrary fragment arrival order (§4, Figures 5/6);
//! * [`Wsc2Stream::fold`] of any permutation of disjoint partials equals the
//!   one-shot digest — the merge stage's algebraic foundation;
//! * [`TpduInvariant::fold`] over any partition of a TPDU's fragments among
//!   workers, folded in any order, equals the serial accumulator.

use chunks::core::chunk::{byte_chunk, Chunk};
use chunks::core::frag::{merge, split};
use chunks::core::label::FramingTuple;
use chunks::wsc::{InvariantLayout, TpduInvariant, Wsc2, Wsc2Stream};
use proptest::prelude::*;

/// Deterministic LCG over a seed — used for shuffles and partitions so a
/// failing case reproduces from its proptest-reported inputs.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i + 1));
        }
    }
}

fn data_chunk(payload: &[u8], t_st: bool, x_st: bool) -> Chunk {
    byte_chunk(
        FramingTuple::new(0x0C0A, 700, false),
        FramingTuple::new(0x51, 0, t_st),
        FramingTuple::new(0xE0, 44, x_st),
        payload,
    )
}

/// Splits `chunk` into fragments at pseudo-random points until no fragment
/// exceeds `max_len` elements.
fn frag_randomly(chunk: Chunk, max_len: u32, lcg: &mut Lcg) -> Vec<Chunk> {
    let mut out = Vec::new();
    let mut work = vec![chunk];
    while let Some(c) = work.pop() {
        if c.header.len <= max_len {
            out.push(c);
            continue;
        }
        let at = 1 + lcg.below(c.header.len as usize - 1) as u32;
        let (a, b) = split(&c, at).expect("in-range split");
        work.push(b);
        work.push(a);
    }
    // `pop` order already yields front-to-back; keep that as arrival order
    // until the caller shuffles.
    out
}

fn digest_of(chunks: &[Chunk]) -> [u8; 8] {
    let mut inv = TpduInvariant::with_default_layout();
    for c in chunks {
        inv.absorb_chunk(&c.header, &c.payload).unwrap();
    }
    inv.digest()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn split_then_merge_is_identity(
        payload in proptest::collection::vec(any::<u8>(), 2..200),
        cut_seed in any::<u64>(),
    ) {
        let whole = data_chunk(&payload, true, false);
        let len = whole.header.len;
        let at = 1 + (cut_seed % (len as u64 - 1)) as u32;
        let (head, tail) = split(&whole, at).unwrap();
        prop_assert_eq!(head.header.len + tail.header.len, len);
        prop_assert_eq!(merge(&head, &tail).unwrap(), whole);
    }

    #[test]
    fn recursive_fragments_merge_back_to_the_original(
        payload in proptest::collection::vec(any::<u8>(), 2..200),
        seed in any::<u64>(),
        max_len in 1u32..8,
    ) {
        // Any number of in-network refragmentation steps still ends in
        // single-step reassembly: fold-merge the fragments front to back.
        let whole = data_chunk(&payload, true, true);
        let mut lcg = Lcg(seed);
        let frags = frag_randomly(whole.clone(), max_len, &mut lcg);
        let mut acc = frags[0].clone();
        for f in &frags[1..] {
            acc = merge(&acc, f).unwrap();
        }
        prop_assert_eq!(acc, whole);
    }

    #[test]
    fn wsc2_invariant_survives_any_fragmentation_and_order(
        payload in proptest::collection::vec(any::<u8>(), 2..200),
        seed in any::<u64>(),
        max_len in 1u32..6,
    ) {
        let whole = data_chunk(&payload, true, false);
        let base = digest_of(std::slice::from_ref(&whole));
        let mut lcg = Lcg(seed);
        let mut frags = frag_randomly(whole, max_len, &mut lcg);
        lcg.shuffle(&mut frags);
        prop_assert_eq!(digest_of(&frags), base);
    }

    #[test]
    fn stream_fold_of_any_permutation_matches_one_shot(
        bytes in proptest::collection::vec(any::<u8>(), 4..256),
        seed in any::<u64>(),
        pieces in 2usize..9,
    ) {
        // One-shot reference over the whole byte string.
        let mut whole = Wsc2::new();
        whole.add_bytes(0, &bytes);

        // Cut at symbol (4-byte) boundaries so partials cover disjoint
        // positions, one stream per piece.
        let symbols = bytes.len().div_ceil(4);
        let mut lcg = Lcg(seed);
        let mut cuts: Vec<usize> = (0..pieces - 1)
            .map(|_| (1 + lcg.below(symbols.max(2) - 1)) * 4)
            .collect();
        cuts.push(0);
        cuts.push(bytes.len().next_multiple_of(4));
        cuts.sort_unstable();
        cuts.dedup();

        let mut partials: Vec<Wsc2Stream> = cuts
            .windows(2)
            .map(|w| {
                let (lo, hi) = (w[0], w[1].min(bytes.len()));
                let mut s = Wsc2Stream::new();
                if lo < bytes.len() {
                    s.add_bytes(lo as u64 / 4, &bytes[lo..hi]);
                }
                s
            })
            .collect();
        lcg.shuffle(&mut partials);

        let mut acc = Wsc2Stream::new();
        for p in &partials {
            acc.fold(p);
        }
        prop_assert_eq!(acc.digest(), whole.digest());

        // fold_code over the raw code values is the same sum.
        let mut via_codes = Wsc2Stream::new();
        for p in &partials {
            via_codes.fold_code(&p.code());
        }
        prop_assert_eq!(via_codes.digest(), whole.digest());
    }

    #[test]
    fn invariant_fold_over_any_worker_partition_matches_serial(
        payload in proptest::collection::vec(any::<u8>(), 2..160),
        seed in any::<u64>(),
        workers in 1usize..6,
        max_len in 1u32..5,
    ) {
        let whole = data_chunk(&payload, true, true);
        let base = digest_of(std::slice::from_ref(&whole));

        // Fragment, then deal the fragments to `workers` independent
        // partial accumulators — an arbitrary assignment, like a pipeline
        // sharding chunks rather than connections would produce.
        let mut lcg = Lcg(seed);
        let mut frags = frag_randomly(whole, max_len, &mut lcg);
        lcg.shuffle(&mut frags);
        let mut partials: Vec<TpduInvariant> = (0..workers)
            .map(|_| TpduInvariant::with_default_layout())
            .collect();
        for f in &frags {
            let w = lcg.below(workers);
            partials[w].absorb_chunk(&f.header, &f.payload).unwrap();
        }

        // Fold the partials in a shuffled order.
        let mut order: Vec<usize> = (0..workers).collect();
        lcg.shuffle(&mut order);
        let mut acc = TpduInvariant::with_default_layout();
        for &w in &order {
            acc.fold(&partials[w]).unwrap();
        }
        prop_assert_eq!(acc.digest(), base);
        prop_assert!(acc.matches(base));
    }

    #[test]
    fn borrowed_spans_decode_bitwise_equal_to_owned(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..120), 1..8),
        mtu in 256usize..1500,
    ) {
        // The zero-copy walk (validate → spans → decode_chunk_at) and the
        // borrowed view (decode_chunk_ref) must reproduce the owned decode
        // (unpack) bit for bit, for arbitrary packed chunk sequences — and
        // the borrowed payloads must point *into* the packet buffer.
        use chunks::core::packet::{pack, spans, unpack, validate};
        use chunks::core::wire::{decode_chunk_at, decode_chunk_ref};

        let chunks: Vec<Chunk> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| {
                byte_chunk(
                    FramingTuple::new(7, (i * 256) as u32, false),
                    FramingTuple::new(0x51, (i * 256) as u32, i + 1 == payloads.len()),
                    FramingTuple::new(0xE0, 0, false),
                    p,
                )
            })
            .collect();
        for packet in pack(chunks, mtu).unwrap() {
            let owned = unpack(&packet).unwrap();
            prop_assert!(validate(&packet).is_ok());
            let range = packet.bytes.as_ptr_range();
            let mut walked = Vec::new();
            for (at, end) in spans(&packet) {
                let (chunk, used) = decode_chunk_at(&packet.bytes, at).unwrap();
                prop_assert_eq!(at + used, end);
                let (cref, used_ref) = decode_chunk_ref(&packet.bytes[at..]).unwrap();
                prop_assert_eq!(used_ref, used);
                prop_assert_eq!(&cref.to_chunk(), &chunk);
                prop_assert_eq!(&chunk.payload[..], cref.payload);
                if !chunk.payload.is_empty() {
                    let p = chunk.payload.as_ptr_range();
                    prop_assert!(p.start >= range.start && p.end <= range.end,
                        "decode_chunk_at copied the payload");
                }
                walked.push(chunk);
            }
            prop_assert_eq!(walked, owned);
        }
    }

    #[test]
    fn arena_interval_set_matches_vec_oracle(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..512, 1u64..96), 1..200),
        probes in proptest::collection::vec((0u64..640, 1u64..64), 8),
    ) {
        // The slab-backed set the hot path uses, against the Vec-backed
        // oracle, under random insert/subtract — every observable compared
        // after every op.
        use chunks::vreasm::{ArenaIntervalSet, IntervalSet};

        let mut arena = ArenaIntervalSet::new();
        let mut oracle = IntervalSet::new();
        for &(is_insert, start, len) in &ops {
            let end = start + len;
            if is_insert {
                prop_assert_eq!(arena.insert(start, end), oracle.insert(start, end));
            } else {
                prop_assert_eq!(arena.subtract(start, end), oracle.subtract(start, end));
            }
            let ranges: Vec<(u64, u64)> = arena.iter().collect();
            prop_assert_eq!(&ranges[..], oracle.ranges());
            prop_assert_eq!(arena.covered(), oracle.covered());
            prop_assert_eq!(arena.fragments(), oracle.fragments());
            for &(s, l) in &probes {
                prop_assert_eq!(arena.overlap(s, s + l), oracle.overlap(s, s + l));
                prop_assert_eq!(arena.contains(s, s + l), oracle.contains(s, s + l));
                prop_assert_eq!(arena.uncovered(s, s + l), oracle.uncovered(s, s + l));
                prop_assert_eq!(arena.gaps(s + l), oracle.gaps(s + l));
                prop_assert_eq!(arena.is_contiguous_to(s), oracle.is_contiguous_to(s));
            }
        }
        // `clear` recycles every node; the set behaves as new.
        arena.clear();
        prop_assert_eq!(arena.covered(), 0);
        prop_assert_eq!(arena.insert(3, 9), 0, "clean insert overlaps nothing");
        prop_assert_eq!(arena.covered(), 6);
    }

    #[test]
    fn invariant_fold_rejects_disagreeing_partials(
        payload in proptest::collection::vec(any::<u8>(), 4..64),
        flip in 1u32..u32::MAX,
    ) {
        let whole = data_chunk(&payload, true, false);
        let (a, mut b) = split(&whole, whole.header.len / 2).unwrap();
        b.header.tpdu.id ^= flip;
        let mut pa = TpduInvariant::with_default_layout();
        pa.absorb_chunk(&a.header, &a.payload).unwrap();
        let mut pb = TpduInvariant::with_default_layout();
        pb.absorb_chunk(&b.header, &b.payload).unwrap();
        prop_assert!(pa.fold(&pb).is_err());
    }
}

#[test]
fn layout_positions_are_disjoint() {
    // The invariant's special positions never collide with data symbols —
    // the property the whole Figure 5/6 layout depends on.
    let layout = InvariantLayout::with_data_symbols(1024);
    assert!(layout.tid_pos() >= 1024);
    assert!(layout.cid_pos() > layout.tid_pos());
    assert!(layout.cst_pos() > layout.cid_pos());
    assert!(layout.x_pair_pos(0) > layout.cst_pos());
}
