//! Shared scaffolding for the parallel-pipeline differential tests: seeded
//! scenario generation, trace recording, and the serial reference replay.
//!
//! The equivalence methodology is *trace replay*: a scenario is first played
//! through the serial reference path — a closed retransmission loop over a
//! seeded [`Profile`] network — and every frame that arrives at the receiver
//! (plus every group reset the loop performs) is recorded as a [`TraceOp`].
//! The recorded trace is then replayed, byte-identically, into a fresh
//! serial [`ConnectionDemux`] and into [`ParallelReceiver`]s at several
//! worker counts. Both replays see the exact same input sequence, so any
//! divergence in delivered bytes, digests, verdicts, statistics or event
//! streams is a real behavioural difference, not generation noise.

#![allow(dead_code)]

pub mod alloc_counter;

use std::collections::BTreeMap;

use chunks::netsim::Profile;
use chunks::transport::{
    AckInfo, ConnSpec, ConnectionDemux, ConnectionParams, DeliveryMode, DemuxEvent, Receiver,
    RxEvent, RxStats, Sender, SenderConfig, Signal,
};
use chunks::transport::{ControlKind, Engine, ParallelReceiver};
use chunks::wsc::{InvariantLayout, Wsc2Stream};
use chunks_core::packet::Packet;

/// One recorded input to the receive side.
#[derive(Clone, Debug)]
pub enum TraceOp {
    /// A frame arrived at virtual time `now`.
    Packet {
        /// The on-the-wire bytes.
        frame: Vec<u8>,
        /// Arrival time.
        now: u64,
    },
    /// The reference loop cleared a failed/incomplete group before its
    /// retransmission round.
    Reset {
        /// The connection whose group is cleared.
        conn_id: u32,
        /// The group's first element (connection space).
        start: u64,
    },
}

/// A fully-specified differential scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario index (labelling only).
    pub index: usize,
    /// The network behaviour.
    pub profile: Profile,
    /// Seed for the network and message content.
    pub seed: u64,
    /// Number of concurrent connections.
    pub conns: usize,
    /// Message length per connection, in bytes.
    pub message_len: usize,
    /// Delivery strategy on every receiver.
    pub mode: DeliveryMode,
    /// Element size in bytes.
    pub elem_size: u16,
    /// TPDU size in elements.
    pub tpdu_elements: u32,
    /// Path MTU.
    pub mtu: usize,
    /// Whether to splice an ack + signal + unknown-connection control packet
    /// into the trace (exercises the dispatcher's control plane).
    pub inject_control: bool,
}

impl Scenario {
    /// Stable label for failure messages.
    pub fn label(&self) -> String {
        format!(
            "#{} {} seed={:#x} conns={} len={} mode={:?} esize={} tpdu={} mtu={}",
            self.index,
            self.profile.name(),
            self.seed,
            self.conns,
            self.message_len,
            self.mode,
            self.elem_size,
            self.tpdu_elements,
            self.mtu
        )
    }

    /// Connection ids used by this scenario (1-based, sequential — the
    /// allocation pattern the Fibonacci shard hash is built for).
    pub fn conn_ids(&self) -> Vec<u32> {
        (1..=self.conns as u32).collect()
    }

    /// The deterministic message a connection sends.
    pub fn message(&self, conn_id: u32) -> Vec<u8> {
        let mut state = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(conn_id as u64);
        (0..self.message_len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect()
    }

    fn params(&self, conn_id: u32) -> ConnectionParams {
        ConnectionParams {
            conn_id,
            elem_size: self.elem_size,
            initial_csn: conn_id.wrapping_mul(1000),
            tpdu_elements: self.tpdu_elements,
        }
    }

    fn layout(&self) -> InvariantLayout {
        InvariantLayout::with_data_symbols(1 << 15)
    }

    fn capacity_elements(&self) -> u64 {
        (self.message_len as u64 / self.elem_size as u64) + self.tpdu_elements as u64 + 64
    }

    fn sender(&self, conn_id: u32) -> Sender {
        Sender::new(SenderConfig {
            params: self.params(conn_id),
            layout: self.layout(),
            mtu: self.mtu,
            min_tpdu_elements: 2,
            max_tpdu_elements: self.tpdu_elements.max(2),
        })
    }

    fn receiver(&self, conn_id: u32) -> Receiver {
        Receiver::new(
            self.mode,
            self.params(conn_id),
            self.layout(),
            self.capacity_elements(),
        )
    }

    /// [`ConnSpec`]s for the parallel pipeline — same parameters as the
    /// serial receivers to the letter.
    pub fn specs(&self) -> Vec<ConnSpec> {
        self.conn_ids()
            .iter()
            .map(|&id| {
                ConnSpec::new(
                    self.params(id),
                    self.layout(),
                    self.mode,
                    self.capacity_elements(),
                )
            })
            .collect()
    }

    /// Plays the scenario through the serial reference path (closed
    /// retransmission loop over the profile network) and records the
    /// receive-side trace.
    pub fn generate_trace(&self) -> Vec<TraceOp> {
        let ids = self.conn_ids();
        let mut senders: BTreeMap<u32, Sender> = ids
            .iter()
            .map(|&id| {
                let mut tx = self.sender(id);
                tx.submit_simple(&self.message(id), id, false);
                (id, tx)
            })
            .collect();
        let mut demux = ConnectionDemux::new();
        for &id in &ids {
            demux.register(id, self.receiver(id));
        }

        let mut trace = Vec::new();
        let mut clock: u64 = 0;

        if self.inject_control {
            // One control packet up front: an ack for a reverse-direction
            // connection, a teardown signal, and a data chunk for a
            // connection nobody registered.
            let mut mux = chunks::transport::PacketMux::new(self.mtu);
            mux.enqueue_ack(
                0xFEED,
                &AckInfo {
                    cumulative: 7,
                    sacks: vec![11],
                    gaps: vec![(8, 9)],
                    need_ed: vec![],
                    pressure: false,
                },
            );
            mux.enqueue_signal(&Signal::Teardown { conn_id: 0xFEED });
            let mut foreign = self.sender(0xDEAD);
            foreign.submit_simple(&vec![0x55u8; self.elem_size as usize * 4], 1, false);
            for p in foreign.packets_for_pending().unwrap() {
                mux.enqueue_chunks(chunks_core::packet::unpack(&p).unwrap());
            }
            for p in mux.flush().unwrap() {
                trace.push(TraceOp::Packet {
                    frame: p.bytes.to_vec(),
                    now: clock,
                });
                demux.handle_packet(&p, clock);
                clock += 1;
            }
        }

        let max_rounds = 64;
        for round in 0..max_rounds {
            let mut inputs: Vec<(u64, Vec<u8>)> = Vec::new();
            for &id in &ids {
                let packets = if round == 0 {
                    senders[&id].packets_for_pending().unwrap()
                } else {
                    let rx = demux.receiver_mut(id).unwrap();
                    for s in rx.failed_starts() {
                        rx.reset_group(s);
                        trace.push(TraceOp::Reset {
                            conn_id: id,
                            start: s,
                        });
                    }
                    let tx = senders.get_mut(&id).unwrap();
                    let missing = tx.unacked_starts();
                    if missing.is_empty() {
                        Vec::new()
                    } else {
                        tx.retransmit(&missing).unwrap()
                    }
                };
                for p in packets {
                    inputs.push((clock + inputs.len() as u64 * 500, p.bytes.to_vec()));
                }
            }
            if inputs.is_empty() {
                break;
            }
            let mut path = self
                .profile
                .build(self.mtu, self.seed.wrapping_add(round as u64));
            let deliveries = path.run(inputs);
            for d in &deliveries {
                let packet = Packet {
                    bytes: d.frame.clone().into(),
                };
                trace.push(TraceOp::Packet {
                    frame: d.frame.clone(),
                    now: d.time,
                });
                demux.handle_packet(&packet, d.time);
                clock = clock.max(d.time);
            }
            clock += 1_000_000;
            let mut done = true;
            for &id in &ids {
                let ack = demux.receiver(id).unwrap().make_ack();
                senders.get_mut(&id).unwrap().handle_ack(&ack);
                if senders[&id].pending_tpdus() > 0 {
                    done = false;
                }
            }
            if done {
                break;
            }
        }
        trace
    }
}

/// Everything observable about one connection after a replay.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConnObservation {
    /// Full application address space.
    pub app: Vec<u8>,
    /// Contiguously verified prefix, in elements.
    pub verified_prefix: u64,
    /// Per-connection receiver events, in arrival order.
    pub events: Vec<RxEvent>,
    /// `(start, digest)` of every delivered TPDU.
    pub digests: Vec<(u64, [u8; 8])>,
    /// Starts of groups that failed verification.
    pub failed: Vec<u64>,
    /// Final acknowledgment.
    pub ack: AckInfo,
    /// Receiver statistics.
    pub stats: RxStats,
    /// Whether `C.ST` closed the connection.
    pub closed: bool,
}

impl ConnObservation {
    fn of(rx: &Receiver, events: Vec<RxEvent>) -> Self {
        ConnObservation {
            app: rx.app_data().to_vec(),
            verified_prefix: rx.verified_prefix(),
            events,
            digests: rx.delivered_digests(),
            failed: rx.failed_starts(),
            ack: rx.make_ack(),
            stats: rx.stats,
            closed: rx.is_closed(),
        }
    }
}

/// The serial reference replay of a recorded trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SerialReplay {
    /// Per-connection observations.
    pub conns: BTreeMap<u32, ConnObservation>,
    /// Control-plane events (acks, signals, unknown connections) in arrival
    /// order.
    pub control: Vec<ControlKind>,
    /// Chunks routed by wire type.
    pub routed: [u64; 5],
    /// XOR-fold of every delivered TPDU's verified code, across all
    /// connections.
    pub transcript_digest: [u8; 8],
}

/// Replays a recorded trace through a fresh serial [`ConnectionDemux`]
/// using the zero-copy borrow path (the default).
pub fn replay_serial(scenario: &Scenario, trace: &[TraceOp]) -> SerialReplay {
    replay_serial_inner(scenario, trace, false)
}

/// Replays a recorded trace through the pre-refactor owned decode path
/// (`Receiver::set_legacy_owned`) — the oracle leg of the borrow-vs-owned
/// differential in `tests/parallel_differential.rs`.
pub fn replay_serial_legacy(scenario: &Scenario, trace: &[TraceOp]) -> SerialReplay {
    replay_serial_inner(scenario, trace, true)
}

fn replay_serial_inner(scenario: &Scenario, trace: &[TraceOp], legacy_owned: bool) -> SerialReplay {
    let ids = scenario.conn_ids();
    let mut demux = ConnectionDemux::new();
    for &id in &ids {
        let mut rx = scenario.receiver(id);
        rx.set_legacy_owned(legacy_owned);
        demux.register(id, rx);
    }
    let mut per_conn: BTreeMap<u32, Vec<RxEvent>> =
        ids.iter().map(|&id| (id, Vec::new())).collect();
    let mut control = Vec::new();
    for op in trace {
        match op {
            TraceOp::Packet { frame, now } => {
                let packet = Packet {
                    bytes: frame.clone().into(),
                };
                for event in demux.handle_packet(&packet, *now) {
                    match event {
                        DemuxEvent::Connection { conn_id, event } => {
                            per_conn.entry(conn_id).or_default().push(event);
                        }
                        DemuxEvent::Ack { conn_id, ack } => {
                            control.push(ControlKind::Ack { conn_id, ack });
                        }
                        DemuxEvent::Signal(s) => control.push(ControlKind::Signal(s)),
                        DemuxEvent::UnknownConnection { conn_id } => {
                            control.push(ControlKind::UnknownConnection { conn_id });
                        }
                    }
                }
            }
            TraceOp::Reset { conn_id, start } => {
                demux.receiver_mut(*conn_id).unwrap().reset_group(*start);
            }
        }
    }
    let mut transcript = Wsc2Stream::new();
    let mut conns = BTreeMap::new();
    for &id in &ids {
        let rx = demux.receiver(id).unwrap();
        for (start, _) in rx.delivered_digests() {
            if let Some(code) = rx.delivered_code(start) {
                transcript.fold_code(&code);
            }
        }
        conns.insert(
            id,
            ConnObservation::of(rx, per_conn.remove(&id).unwrap_or_default()),
        );
    }
    SerialReplay {
        conns,
        control,
        routed: demux.routed,
        transcript_digest: transcript.digest(),
    }
}

/// Replays a recorded trace through a [`ParallelReceiver`] and returns the
/// observations in the same shape as [`replay_serial`], so the two replays
/// compare with one `assert_eq!`.
pub fn replay_parallel(
    scenario: &Scenario,
    trace: &[TraceOp],
    workers: usize,
    engine: Engine,
) -> SerialReplay {
    let mut pr = ParallelReceiver::new(workers, engine, scenario.specs());
    for op in trace {
        match op {
            TraceOp::Packet { frame, now } => {
                let packet = Packet {
                    bytes: frame.clone().into(),
                };
                pr.ingest(&packet, *now);
            }
            TraceOp::Reset { conn_id, start } => pr.reset_group(*conn_id, *start),
        }
    }
    let out = pr.finish();
    assert_eq!(out.dispatch.decode_errors, 0, "{}", scenario.label());
    let conns = out
        .conns
        .into_iter()
        .map(|(id, report)| {
            let obs = ConnObservation::of(&report.receiver, report.events);
            assert_eq!(obs.ack, report.ack, "merge-stage ack snapshot");
            (id, obs)
        })
        .collect();
    SerialReplay {
        conns,
        control: out.control.into_iter().map(|e| e.kind).collect(),
        routed: out.dispatch.routed,
        transcript_digest: out.transcript_digest,
    }
}

/// The scenario matrix: `count` scenarios spread over every profile, 1–5
/// connections, the three delivery modes, several element/TPDU/MTU shapes.
pub fn scenarios(count: usize) -> Vec<Scenario> {
    let modes = [
        DeliveryMode::Immediate,
        DeliveryMode::Reorder,
        DeliveryMode::Reassemble,
    ];
    let shapes: [(u16, u32, usize); 4] = [
        // (elem_size, tpdu_elements, mtu)
        (1, 16, 300),
        (1, 64, 600),
        (2, 32, 1500),
        (4, 8, 512),
    ];
    (0..count)
        .map(|i| {
            let profile = Profile::ALL[i % Profile::ALL.len()];
            let (elem_size, tpdu_elements, mtu) = shapes[(i / 3) % shapes.len()];
            Scenario {
                index: i,
                profile,
                seed: 0xD1FF_0000u64.wrapping_add(i as u64 * 0x9E37),
                conns: 1 + i % 5,
                message_len: (256 + (i % 7) * 300) / elem_size as usize * elem_size as usize,
                mode: modes[i % modes.len()],
                elem_size,
                tpdu_elements,
                mtu,
                inject_control: i % 4 == 0,
            }
        })
        .collect()
}

/// Scenario count for the big sweeps: honours `PARALLEL_SCENARIOS`, defaults
/// to the full 200 in release builds and a quick 24 under debug (keeps
/// `cargo test -q` fast; `just test-parallel` runs the full matrix).
pub fn scenario_count() -> usize {
    if let Ok(v) = std::env::var("PARALLEL_SCENARIOS") {
        return v.parse().expect("PARALLEL_SCENARIOS must be an integer");
    }
    if cfg!(debug_assertions) {
        24
    } else {
        200
    }
}
