//! A counting global allocator for the hot-path allocation tests.
//!
//! The wrapper delegates every call to the [`System`] allocator and bumps
//! relaxed atomic counters. A test binary opts in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: common::alloc_counter::CountingAllocator = CountingAllocator;
//! ```
//!
//! and then brackets the code under test with [`assert_no_alloc!`] (or takes
//! manual [`snapshot`]s for allocs-per-chunk arithmetic). Counters are
//! process-wide, so tests that measure must run single-threaded or accept
//! other threads' traffic; the hot-path tests use the virtual parallel
//! engine precisely so the measured window has exactly one thread running.

#![allow(dead_code)]
// The workspace denies `unsafe_code`; a `GlobalAlloc` impl is the one place
// the allocation tests cannot avoid it. The impl only forwards to `System`
// and bumps atomics — no pointer arithmetic of its own.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap allocations observed since process start (alloc + realloc +
/// alloc_zeroed).
pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Heap frees observed since process start.
pub static FREES: AtomicU64 = AtomicU64::new(0);
/// Bytes requested across all allocations.
pub static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// `System`, with every entry point counted.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place still counts: the steady state must not even ask.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

/// A point-in-time reading of the counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Allocation count at the snapshot.
    pub allocs: u64,
    /// Free count at the snapshot.
    pub frees: u64,
    /// Allocated bytes at the snapshot.
    pub bytes: u64,
}

/// Reads the counters.
pub fn snapshot() -> Snapshot {
    Snapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// Allocations (and bytes) between two snapshots.
pub fn delta(before: Snapshot, after: Snapshot) -> (u64, u64) {
    (after.allocs - before.allocs, after.bytes - before.bytes)
}

/// Runs a block and asserts it performed **zero** heap allocations,
/// returning the block's value. The optional trailing arguments format a
/// context message on failure.
///
/// ```ignore
/// let acked = assert_no_alloc!(rx.ingest_batch(&packets, now, &mut out));
/// assert_no_alloc!({ rx.handle_packet_into(&p, 0, &mut out) }, "packet {i}");
/// ```
#[macro_export]
macro_rules! assert_no_alloc {
    ($body:expr) => {
        $crate::assert_no_alloc!($body, "steady state must not allocate")
    };
    ($body:expr, $($ctx:tt)+) => {{
        let before = $crate::common::alloc_counter::snapshot();
        let value = $body;
        let after = $crate::common::alloc_counter::snapshot();
        let (allocs, bytes) = $crate::common::alloc_counter::delta(before, after);
        assert_eq!(
            allocs,
            0,
            "{}: {} heap allocations ({} bytes) inside a no-alloc scope",
            format_args!($($ctx)+),
            allocs,
            bytes
        );
        value
    }};
}
