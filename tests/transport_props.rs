//! Property tests of the transport's end-to-end guarantees: whatever the
//! loss/duplication/reorder pattern, retransmission with identical labels
//! converges and the delivered bytes equal the sent bytes.

use chunks::core::label::ChunkType;
use chunks::core::packet::unpack;
use chunks::transport::{
    ConnectionParams, DegradePolicy, DeliveryMode, Receiver, RetransmitTimer, RtoConfig, Sender,
    SenderConfig, Session, StreamReceiver,
};
use chunks::wsc::InvariantLayout;
use proptest::prelude::*;

fn params() -> ConnectionParams {
    ConnectionParams {
        conn_id: 0xAB,
        elem_size: 1,
        initial_csn: 500,
        tpdu_elements: 16,
    }
}

fn layout() -> InvariantLayout {
    InvariantLayout::with_data_symbols(2048)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reliable_delivery_under_arbitrary_loss(
        message in proptest::collection::vec(any::<u8>(), 16..400),
        loss_seed in any::<u64>(),
        loss_pct in 0u64..45,
        mode_idx in 0usize..3,
    ) {
        let mode = [
            DeliveryMode::Immediate,
            DeliveryMode::Reorder,
            DeliveryMode::Reassemble,
        ][mode_idx];
        let mut tx = Sender::new(SenderConfig {
            params: params(),
            layout: layout(),
            mtu: 128,
            min_tpdu_elements: 4,
            max_tpdu_elements: 64,
        });
        let mut rx = Receiver::new(mode, params(), layout(), 4096);
        tx.submit_simple(&message, 0xE, false);
        let mut state = loss_seed | 1;
        let mut lose = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % 100 < loss_pct
        };
        let mut rounds = 0;
        loop {
            rounds += 1;
            prop_assert!(rounds < 64, "did not converge");
            let packets = if rounds == 1 {
                tx.packets_for_pending().unwrap()
            } else {
                for s in rx.failed_starts() {
                    rx.reset_group(s);
                }
                let ack = rx.make_ack();
                tx.handle_ack(&ack);
                if tx.pending_tpdus() == 0 {
                    break;
                }
                tx.retransmit_for_ack(&ack).unwrap()
            };
            // Deliver surviving packets in reverse order (reorder stress).
            for p in packets.iter().rev() {
                if !lose() {
                    rx.handle_packet(p, rounds as u64);
                }
            }
        }
        prop_assert_eq!(rx.verified_prefix(), message.len() as u64);
        prop_assert_eq!(&rx.app_data()[..message.len()], &message[..]);
    }

    #[test]
    fn stream_receiver_window_invariants(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 16..64), 1..12),
        dup_seed in any::<u64>(),
    ) {
        // Whole blocks of 16-64 bytes streamed through a 64-element window,
        // with pseudo-random chunk duplication; delivery must equal the
        // concatenation, dup counts accounted, memory bounded by the window.
        let p = ConnectionParams {
            conn_id: 0x5,
            elem_size: 1,
            initial_csn: u32::MAX - 80, // wrap mid-run
            tpdu_elements: 16,
        };
        let mut framer = chunks::transport::Framer::new(p, layout());
        let mut rx = StreamReceiver::new(p, layout(), 64);
        let mut state = dup_seed | 1;
        let mut sent = Vec::new();
        let mut received = Vec::new();
        for block in &blocks {
            // Pad to whole TPDUs of 16 so the window always drains fully.
            let mut data = block.clone();
            data.resize(data.len().div_ceil(16) * 16, 0xEE);
            sent.extend_from_slice(&data);
            for t in framer.frame_simple(&data, 0xF, false) {
                for c in t.all_chunks() {
                    rx.handle_chunk(c.clone(), 0);
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if (state >> 40).is_multiple_of(3) {
                        rx.handle_chunk(c, 0); // duplicate
                    }
                }
            }
            received.extend(rx.poll_delivered());
        }
        prop_assert_eq!(&received, &sent);
        prop_assert_eq!(rx.stats.overrun_chunks, 0);
        prop_assert_eq!(rx.stats.tpdus_failed, 0);
    }

    #[test]
    fn timer_retransmissions_are_byte_identical(
        message in proptest::collection::vec(any::<u8>(), 32..300),
    ) {
        // §3.3: "retransmitted data uses identical identifiers". Whatever
        // the timer resends must match an originally transmitted chunk on
        // labels AND payload, bit for bit.
        let mut s = Session::new(
            SenderConfig {
                params: params(),
                layout: layout(),
                mtu: 128,
                min_tpdu_elements: 4,
                max_tpdu_elements: 64,
            },
            params(),
            layout(),
            DeliveryMode::Immediate,
            4096,
        );
        s.send(&message, 0xE, false);
        let mut originals = Vec::new();
        for p in s.pump(0).unwrap() {
            originals.extend(unpack(&p).unwrap());
        }
        prop_assert!(originals.iter().any(|c| c.header.ty == ChunkType::Data));
        // No acks ever arrive; keep pumping until the timer fires.
        let mut retransmitted = Vec::new();
        let mut t = 0u64;
        while retransmitted.is_empty() && t < 20_000_000 {
            t += 500_000;
            for p in s.pump(t).unwrap() {
                retransmitted.extend(
                    unpack(&p).unwrap().into_iter().filter(|c| {
                        matches!(c.header.ty, ChunkType::Data | ChunkType::ErrorDetection)
                    }),
                );
            }
        }
        prop_assert!(!retransmitted.is_empty(), "timer never fired");
        for c in &retransmitted {
            prop_assert!(
                originals.contains(c),
                "retransmission differs from every original: {:?}",
                c.header
            );
        }
    }

    #[test]
    fn backoff_is_monotone_until_a_sample_resets_it(
        initial in 200_000u64..5_000_000,
        retries in 4u32..12,
    ) {
        let cfg = RtoConfig {
            initial_rto_ns: initial,
            min_rto_ns: initial / 4,
            max_rto_ns: initial * 64,
            max_retries: retries,
            policy: DegradePolicy::Shed,
        };
        let mut timer = RetransmitTimer::new(cfg);
        timer.on_send(0, 0, false);
        // With no acks the per-TPDU RTO never decreases, fire after fire,
        // until the budget empties and the entry is disarmed.
        let mut prev = 0u64;
        while let Some(rto) = timer.rto_for(0) {
            prop_assert!(rto >= prev, "backoff shrank: {rto} < {prev}");
            prev = rto;
            let due = timer.next_expiry().unwrap();
            timer.poll(due);
        }
        prop_assert_eq!(timer.fires, retries as u64);
        // A fresh RTT sample (from a never-retransmitted TPDU) recomputes
        // the base and so resets the saturated backoff for future sends.
        let now = 1_000_000_000;
        timer.on_send(8, now, false);
        timer.on_ack(8, now + initial / 8);
        prop_assert_eq!(timer.samples, 1);
        timer.on_send(16, now, false);
        let fresh = timer.rto_for(16).unwrap();
        prop_assert!(fresh <= initial, "sample did not reset the base");
        prop_assert!(fresh < prev, "fresh send still runs under old backoff");
    }
}
