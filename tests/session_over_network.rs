//! Full-duplex sessions across the simulated network, including a mid-run
//! route change — all three §1 disordering sources against the complete
//! protocol stack.

use chunks::core::packet::Packet;
use chunks::netsim::{LinkConfig, Path, PathBuilder};
use chunks::transport::{ConnectionParams, DeliveryMode, SenderConfig, Session};
use chunks::wsc::InvariantLayout;

fn endpoint(local: u32, remote: u32, mtu: usize) -> Session {
    let params = |conn_id| ConnectionParams {
        conn_id,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: 256,
    };
    Session::new(
        SenderConfig {
            params: params(local),
            layout: InvariantLayout::default(),
            mtu,
            min_tpdu_elements: 32,
            max_tpdu_elements: 2048,
        },
        params(remote),
        InvariantLayout::default(),
        DeliveryMode::Immediate,
        1 << 16,
    )
}

/// Ships one batch of packets through a fresh path and feeds the peer.
fn ship(path: &mut Path, batch: Vec<Packet>, peer: &mut Session, t0: u64) {
    let inputs = batch
        .into_iter()
        .enumerate()
        .map(|(i, p)| (t0 + i as u64 * 600, p.bytes.to_vec()))
        .collect();
    for d in path.run(inputs) {
        peer.handle_packet(
            &Packet {
                bytes: d.frame.into(),
            },
            d.time,
        );
    }
}

#[test]
fn duplex_over_lossy_multipath() {
    let mtu = 1500;
    let mut a = endpoint(1, 2, mtu);
    let mut b = endpoint(2, 1, mtu);
    let msg_a: Vec<u8> = (0..40_000).map(|i| (i % 251) as u8).collect();
    let msg_b: Vec<u8> = (0..25_000).map(|i| (i % 239) as u8).collect();
    a.send(&msg_a, 0xA, false);
    b.send(&msg_b, 0xB, false);

    let cfg = LinkConfig::clean(mtu, 80_000, 622_000_000)
        .with_loss(0.03)
        .with_jitter(100_000);
    let mut rounds = 0;
    while !(a.outbound_done() && b.outbound_done()) {
        rounds += 1;
        assert!(rounds < 30, "did not converge");
        let mut ab = PathBuilder::new(100 + rounds)
            .multipath(4, cfg, 50_000)
            .build();
        ship(&mut ab, a.poll_transmit().unwrap(), &mut b, 0);
        let mut ba = PathBuilder::new(200 + rounds)
            .multipath(4, cfg, 50_000)
            .build();
        ship(&mut ba, b.poll_transmit().unwrap(), &mut a, 0);
    }
    assert_eq!(&b.received()[..msg_a.len()], &msg_a[..]);
    assert_eq!(&a.received()[..msg_b.len()], &msg_b[..]);
    // Immediate mode on both sides: one touch per delivered payload byte.
    assert_eq!(b.rx_stats().data_touches, msg_a.len() as u64);
}

#[test]
fn transfer_survives_route_change() {
    // A route change mid-transfer: the new route is 10x faster, so packets
    // sent after the switch overtake those still in flight on the old one.
    let mtu = 1500;
    let mut a = endpoint(3, 4, mtu);
    let mut b = endpoint(4, 3, mtu);
    let msg: Vec<u8> = (0..30_000).map(|i| (i % 233) as u8).collect();
    a.send(&msg, 0xC, false);

    let old = LinkConfig::clean(mtu, 2_000_000, 0); // 2 ms
    let new = LinkConfig::clean(mtu, 200_000, 0); // 0.2 ms
    let mut rounds = 0;
    while !a.outbound_done() {
        rounds += 1;
        assert!(rounds < 10, "did not converge");
        // The switch happens while the batch is still being injected.
        let mut ab = PathBuilder::new(rounds)
            .route_change(old, new, 4_000)
            .build();
        ship(&mut ab, a.poll_transmit().unwrap(), &mut b, 0);
        let mut ba = PathBuilder::new(50 + rounds)
            .link(LinkConfig::clean(mtu, 100_000, 0))
            .build();
        ship(&mut ba, b.poll_transmit().unwrap(), &mut a, 0);
    }
    assert_eq!(&b.received()[..msg.len()], &msg[..]);
    assert_eq!(rounds, 1, "pure reordering needs no retransmission at all");
    assert_eq!(b.rx_stats().tpdus_failed, 0);
}
