//! Deterministic-schedule concurrency tests for the parallel receive
//! pipeline (§3.3's order-free processing, pushed to its adversarial limit).
//!
//! One closed loop — per-connection [`Session`] senders, a seeded lossy wire
//! with deterministic corruption, ack-drop rounds that force timer-driven
//! retransmission — runs to convergence against a [`ParallelReceiver`] under
//! every worker-interleaving schedule the virtual engine can express:
//! fair round-robin, reverse, three seeded pseudo-random orders, two fixed
//! rotations, and starvation of each of the four workers in turn (the victim
//! gets no cycles until every other worker's queue is empty). The observable
//! outcome — delivered bytes, per-TPDU WSC-2 digests, verdict events,
//! receiver stats, acks, control-event order, dispatch counters, *and* each
//! sender's [`ReliabilityStats`] — must be bit-identical across all of them,
//! and identical again on the real threaded engine.
//!
//! The loop itself is schedule-invariant by construction: `sync()` is a
//! barrier, so the acks fed back to the senders cannot depend on the
//! interleaving. These tests prove the implementation honours that contract.

use std::collections::BTreeMap;

use chunks::core::packet::Packet;
use chunks::transport::AckInfo;
use chunks::transport::{
    ConnSpec, ConnectionParams, ControlEvent, DegradePolicy, DeliveryMode, DispatchStats, Engine,
    PacketMux, ParallelReceiver, ReliabilityStats, RtoConfig, RxEvent, RxStats, Schedule, Sender,
    SenderConfig, Session,
};
use chunks::wsc::InvariantLayout;

const WORKERS: usize = 4;
const CONNS: u32 = 5;
const MTU: usize = 512;
const MSG_LEN: usize = 1600;
const MAX_ROUNDS: u32 = 300;
/// Virtual time per round; larger than the base RTO so a dropped ack makes
/// the timer fire within two rounds.
const ROUND_NS: u64 = 10_000_000;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// True with probability `percent`/100.
    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

fn conn_ids() -> impl Iterator<Item = u32> {
    1..=CONNS
}

fn layout() -> InvariantLayout {
    InvariantLayout::with_data_symbols(1 << 12)
}

fn params(conn_id: u32) -> ConnectionParams {
    ConnectionParams {
        conn_id,
        elem_size: 1,
        initial_csn: conn_id * 1000,
        tpdu_elements: 64,
    }
}

fn message(conn_id: u32) -> Vec<u8> {
    let mut lcg = Lcg(0xBEA7 + conn_id as u64 * 0x9E37);
    (0..MSG_LEN).map(|_| lcg.next() as u8).collect()
}

fn sender_session(conn_id: u32) -> Session {
    Session::new(
        SenderConfig {
            params: params(conn_id),
            layout: layout(),
            mtu: MTU,
            min_tpdu_elements: 4,
            max_tpdu_elements: 64,
        },
        // The inbound half of each session is idle in this loop; give it a
        // connection id that never appears on the wire.
        params(0xAA00 + conn_id),
        layout(),
        DeliveryMode::Immediate,
        1 << 12,
    )
    .with_rto(RtoConfig {
        initial_rto_ns: 12_000_000,
        min_rto_ns: 4_000_000,
        max_rto_ns: 40_000_000,
        max_retries: 64,
        policy: DegradePolicy::Shed,
    })
}

fn specs() -> Vec<ConnSpec> {
    conn_ids()
        .map(|id| {
            ConnSpec::new(
                params(id),
                layout(),
                DeliveryMode::Immediate,
                MSG_LEN as u64 + 256,
            )
        })
        .collect()
}

/// Everything observable about one run of the closed loop. Stage timings are
/// deliberately excluded — they are the only legitimately nondeterministic
/// output.
#[derive(PartialEq, Debug)]
struct ConnOutcome {
    worker: usize,
    app: Vec<u8>,
    verified: u64,
    digests: Vec<(u64, [u8; 8])>,
    events: Vec<RxEvent>,
    stats: RxStats,
    ack: AckInfo,
    reliability: ReliabilityStats,
}

#[derive(PartialEq, Debug)]
struct Outcome {
    conns: BTreeMap<u32, ConnOutcome>,
    control: Vec<ControlEvent>,
    dispatch: DispatchStats,
    transcript: [u8; 8],
    worker_chunks: Vec<u64>,
    rounds: u32,
}

/// Runs the closed loop to convergence under `engine` and returns the full
/// observable outcome. Every source of randomness is a fixed-seed LCG and
/// every clock is virtual, so two runs may differ only through the engine's
/// interleaving of worker execution.
fn run_loop(engine: Engine) -> Outcome {
    let mut sessions: BTreeMap<u32, Session> = conn_ids()
        .map(|id| {
            let mut s = sender_session(id);
            s.send(&message(id), 0x10 + id, false);
            (id, s)
        })
        .collect();
    let mut pr = ParallelReceiver::new(WORKERS, engine, specs());
    let mut wire = Lcg(0x5EED_0001);
    let mut clock = 0u64;
    let mut ingested = 0u64;
    let mut rounds = 0u32;

    for round in 0..MAX_ROUNDS {
        rounds = round + 1;
        clock += ROUND_NS;
        let mut all_done = true;
        for session in sessions.values_mut() {
            let packets = session.pump(clock).expect("Shed policy never aborts");
            for p in &packets {
                // ~20% deterministic data loss.
                if wire.chance(20) {
                    continue;
                }
                ingested += 1;
                // Every 23rd surviving packet arrives damaged: one flipped
                // bit deep in the frame, past the packet header.
                if ingested.is_multiple_of(23) && p.bytes.len() > 200 {
                    let mut bytes = p.bytes.to_vec();
                    bytes[120] ^= 0x01;
                    pr.ingest(
                        &Packet {
                            bytes: bytes.into(),
                        },
                        clock,
                    );
                } else {
                    pr.ingest(p, clock);
                }
            }
            all_done &= session.outbound_done();
        }

        // Barrier: a consistent receive-side snapshot, independent of the
        // interleaving that produced it.
        let snapshots = pr.sync();
        for snap in &snapshots {
            for &start in &snap.failed {
                pr.reset_group(snap.conn_id, start);
            }
        }
        // Return acks — except on every third round, where the entire ack
        // batch is lost and only the retransmission timers can recover.
        if round % 3 != 1 {
            for snap in &snapshots {
                let mut mux = PacketMux::new(MTU);
                mux.enqueue_ack(snap.conn_id, &snap.ack);
                for p in mux.flush().expect("ack packs into one MTU") {
                    sessions
                        .get_mut(&snap.conn_id)
                        .expect("snapshot for registered conn")
                        .handle_packet(&p, clock);
                }
            }
        }
        if all_done {
            break;
        }
    }

    let outcome = pr.finish();
    let conns = outcome
        .conns
        .into_iter()
        .map(|(id, report)| {
            let rx = &report.receiver;
            (
                id,
                ConnOutcome {
                    worker: report.worker,
                    app: rx.app_data().to_vec(),
                    verified: rx.verified_prefix(),
                    digests: rx.delivered_digests(),
                    events: report.events,
                    stats: rx.stats,
                    ack: report.ack,
                    reliability: sessions[&id].reliability(),
                },
            )
        })
        .collect();
    Outcome {
        conns,
        control: outcome.control,
        dispatch: outcome.dispatch,
        transcript: outcome.transcript_digest,
        worker_chunks: outcome.worker_chunks,
        rounds,
    }
}

/// The eleven adversarial interleavings measured against the fair baseline.
fn adversarial_schedules() -> Vec<Schedule> {
    vec![
        Schedule::Reverse,
        Schedule::Seeded(1),
        Schedule::Seeded(42),
        Schedule::Seeded(0xDEAD_BEEF),
        Schedule::Rotation(vec![2, 0, 3, 1]),
        Schedule::Rotation(vec![3, 2, 1, 0]),
        Schedule::Starve(0),
        Schedule::Starve(1),
        Schedule::Starve(2),
        Schedule::Starve(3),
        Schedule::Fair, // run twice: the baseline must reproduce itself
    ]
}

#[test]
fn adversarial_schedules_match_fair_baseline() {
    let fair = run_loop(Engine::Virtual(Schedule::Fair));

    // The baseline itself must be a real workout: the loop converged, every
    // byte arrived, timers fired, and corruption produced (and recovery
    // cleared) failed verdicts.
    assert!(fair.rounds < MAX_ROUNDS, "loop did not converge");
    for id in conn_ids() {
        let conn = &fair.conns[&id];
        let want = message(id);
        assert_eq!(&conn.app[..want.len()], &want[..], "conn {id} bytes");
        assert_eq!(conn.verified, want.len() as u64, "conn {id} prefix");
        assert_eq!(conn.reliability.shed_tpdus, 0, "conn {id} shed nothing");
    }
    let timer_retransmits: u64 = fair
        .conns
        .values()
        .map(|c| c.reliability.timer_retransmits)
        .sum();
    assert!(
        timer_retransmits > 0,
        "dropped ack rounds must force timer-driven recovery"
    );
    let failed_verdicts: usize = fair
        .conns
        .values()
        .map(|c| {
            c.events
                .iter()
                .filter(|e| matches!(e, RxEvent::TpduFailed { .. }))
                .count()
        })
        .sum();
    assert!(
        failed_verdicts > 0,
        "corrupted frames must produce reject verdicts"
    );
    assert!(
        fair.worker_chunks.iter().filter(|&&c| c > 0).count() > 1,
        "the matrix must actually spread load over workers"
    );

    for schedule in adversarial_schedules() {
        let got = run_loop(Engine::Virtual(schedule.clone()));
        assert_eq!(got, fair, "schedule {schedule:?} diverged from fair");
    }
}

#[test]
fn threaded_engine_matches_fair_baseline() {
    let fair = run_loop(Engine::Virtual(Schedule::Fair));
    let threads = run_loop(Engine::Threads);
    assert_eq!(threads, fair, "threads engine diverged from fair schedule");
}

#[test]
fn starved_worker_holds_back_only_its_own_connections() {
    // Without the sync() barrier, starving a worker visibly delays exactly
    // the connections sharded onto it — and nothing else. This pins the
    // sharding contract the equivalence argument rests on: a schedule can
    // reorder progress *between* shards but never within one.
    let specs = specs();
    let victim = 0usize;
    let mut pr = ParallelReceiver::new(WORKERS, Engine::Virtual(Schedule::Starve(victim)), specs);
    let mut senders: BTreeMap<u32, Sender> = conn_ids()
        .map(|id| {
            let mut tx = Sender::new(SenderConfig {
                params: params(id),
                layout: layout(),
                mtu: MTU,
                min_tpdu_elements: 4,
                max_tpdu_elements: 64,
            });
            tx.submit_simple(&message(id), 0x10 + id, false);
            (id, tx)
        })
        .collect();
    for (_, tx) in senders.iter_mut() {
        for p in tx.packets_for_pending().unwrap() {
            pr.ingest(&p, 0);
        }
    }
    // sync() drains *everything* — starvation delays, it cannot drop.
    let snapshots = pr.sync();
    for snap in &snapshots {
        let want = message(snap.conn_id);
        assert_eq!(
            snap.ack.cumulative,
            want.len() as u64,
            "conn {} fully verified even on its starved worker",
            snap.conn_id
        );
    }
    let outcome = pr.finish();
    assert!(
        outcome.worker_chunks[victim] > 0,
        "victim worker still processed its shard"
    );
}
